//! Multi-threaded sample serving: [`SamplingService`].
//!
//! The paper's use case — analysts repeatedly drawing i.i.d. samples
//! over a prepared union of joins — is a *serving* workload: many
//! small, independent requests against the same frozen plan. This
//! module turns the `Send + Sync` execution surface
//! ([`Engine`], [`Arc<PreparedQuery>`](PreparedQuery), `Send` sampler
//! handles) into an actual server:
//!
//! * a fixed pool of `std::thread` workers (the environment is
//!   offline, so no async runtime — plain threads),
//! * a bounded request queue ([`SamplingService::submit`] applies
//!   backpressure by blocking; [`try_submit`](SamplingService::try_submit)
//!   fails fast),
//! * graceful shutdown ([`SamplingService::shutdown`] drains the queue,
//!   then joins every worker),
//! * queue / throughput / latency counters
//!   ([`SamplingService::stats`]).
//!
//! # Determinism contract
//!
//! Every request carries a `seed` (defaulting to its `id`). A worker
//! serves it by minting a fresh handle from the prepared query and
//! driving it with `SujRng::derive(root_seed, request.seed)` — a pure
//! function of the service's root seed and the request. Therefore:
//! **same root seed + same request ids ⇒ bit-identical per-request
//! samples**, for any worker count, any thread interleaving, and any
//! submission order. A 4-worker service is sample-for-sample equal to a
//! 1-worker service; only wall time changes.
//!
//! ```
//! use suj_core::catalog::{Catalog, Engine};
//! use suj_core::query::UnionQuery;
//! use suj_core::serve::{SampleRequest, SamplingService, ServiceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut catalog = Catalog::new();
//! catalog.register_csv("items", "sku,cat\n1,7\n2,9\n".as_bytes())?;
//! catalog.register_csv("sales", "sale,sku\n100,1\n101,2\n".as_bytes())?;
//! let engine = Engine::new(catalog);
//! let prepared = engine.prepare(
//!     &UnionQuery::set_union().chain("shop", ["items", "sales"])?,
//! )?;
//!
//! let service = SamplingService::start(engine, ServiceConfig::default());
//! let tickets: Vec<_> = (0..8)
//!     .map(|id| service.submit(SampleRequest::prepared(id, 5, &prepared)))
//!     .collect::<Result<_, _>>()?;
//! for ticket in tickets {
//!     let response = ticket.wait()?;
//!     assert_eq!(response.tuples.len(), 5);
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 8);
//! # Ok(())
//! # }
//! ```

use crate::catalog::{Engine, PreparedQuery};
use crate::error::CoreError;
use crate::query::UnionQuery;
use crate::report::RunReport;
use crate::sampler::UnionSampler;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};
use suj_stats::SujRng;
use suj_storage::Tuple;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Worker-pool and queue configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Bounded request-queue capacity ([`SamplingService::submit`]
    /// blocks, [`SamplingService::try_submit`] fails fast when full).
    pub queue_capacity: usize,
    /// Root of the per-request RNG derivation (see the module-level
    /// determinism contract).
    pub root_seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 1024,
            root_seed: 0x5eed,
        }
    }
}

impl ServiceConfig {
    /// A configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Sets the root seed of the per-request RNG derivation.
    #[must_use = "builder methods return the updated configuration"]
    pub fn root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Sets the bounded queue capacity.
    #[must_use = "builder methods return the updated configuration"]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }
}

/// What a request samples: an already-prepared plan (the hot path —
/// zero per-request planning) or a declarative query resolved through
/// the engine's prepared-query cache (first request pays estimation,
/// the rest hit the cache).
#[derive(Clone)]
pub enum RequestTarget {
    /// Serve from a shared prepared query.
    Prepared(Arc<PreparedQuery>),
    /// Resolve and plan through the engine (cached by fingerprint).
    Query(UnionQuery),
}

impl fmt::Debug for RequestTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestTarget::Prepared(_) => f.write_str("Prepared(..)"),
            RequestTarget::Query(q) => write!(f, "Query({q:?})"),
        }
    }
}

/// One sampling request: draw `n` i.i.d. samples from `target`,
/// deterministically addressed by `seed`.
#[derive(Debug, Clone)]
pub struct SampleRequest {
    /// Caller-chosen request id, echoed in the response.
    pub id: u64,
    /// Number of samples to draw.
    pub n: usize,
    /// RNG stream of this request (mixed with the service root seed).
    /// The constructors default it to `id`, which yields the "same ids
    /// ⇒ same samples" contract.
    pub seed: u64,
    /// What to sample.
    pub target: RequestTarget,
    /// Optional deadline: the worker checks it at dequeue and before
    /// every draw, answering [`CoreError::DeadlineExceeded`] instead
    /// of running unbounded. `None` (the default) keeps the old
    /// run-to-completion behavior. A deadline never changes the draw
    /// sequence — a request that finishes in time is bit-identical to
    /// the same request without one.
    pub deadline: Option<Instant>,
    /// Fault-injection hook (chaos testing only): a worker panics
    /// instead of serving this request, exercising the pool's panic
    /// containment end-to-end.
    #[cfg(feature = "faults")]
    pub panic_for_test: bool,
}

impl SampleRequest {
    /// A request against a shared prepared query; `seed` defaults to
    /// `id`.
    pub fn prepared(id: u64, n: usize, prepared: &Arc<PreparedQuery>) -> Self {
        Self {
            id,
            n,
            seed: id,
            target: RequestTarget::Prepared(prepared.clone()),
            deadline: None,
            #[cfg(feature = "faults")]
            panic_for_test: false,
        }
    }

    /// A request against a declarative query (prepared through the
    /// engine's cache); `seed` defaults to `id`.
    pub fn query(id: u64, n: usize, query: UnionQuery) -> Self {
        Self {
            id,
            n,
            seed: id,
            target: RequestTarget::Query(query),
            deadline: None,
            #[cfg(feature = "faults")]
            panic_for_test: false,
        }
    }

    /// Overrides the request's RNG stream (decouple replay identity
    /// from the id).
    #[must_use = "builder methods return the updated request"]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an absolute deadline; the worker answers
    /// [`CoreError::DeadlineExceeded`] once it passes.
    #[must_use = "builder methods return the updated request"]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline as a budget from now
    /// (`deadline = Instant::now() + budget`).
    #[must_use = "builder methods return the updated request"]
    pub fn with_budget(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Fault injection: the worker dequeuing this request panics
    /// instead of serving it, so tests can prove panic containment
    /// (the pool survives, the caller gets a typed error). Only
    /// compiled under the `faults` feature.
    #[cfg(feature = "faults")]
    #[must_use = "builder methods return the updated request"]
    pub fn with_panic_for_test(mut self) -> Self {
        self.panic_for_test = true;
        self
    }
}

/// A served response: the request's samples plus its per-request
/// counters (including draw-latency percentiles).
#[derive(Debug, Clone)]
pub struct SampleResponse {
    /// The request id this response answers.
    pub id: u64,
    /// The drawn samples (`request.n` of them).
    pub tuples: Vec<Tuple>,
    /// Counters and timings for this request only.
    pub report: RunReport,
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full ([`SamplingService::try_submit`]
    /// only); the request is handed back for retry, with a hint for
    /// how long to back off first. Distinct from
    /// [`ShutDown`](Self::ShutDown): a busy service will accept the
    /// request again once the queue drains, a stopped one never will.
    Busy {
        /// The rejected request, handed back to the caller.
        request: SampleRequest,
        /// Suggested back-off before retrying: roughly the time the
        /// pool needs to drain a full queue, derived from the observed
        /// median draw latency (see
        /// [`SamplingService::retry_after_hint`]).
        retry_after: Duration,
    },
    /// The service is shutting down; the request is handed back.
    ShutDown(SampleRequest),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy {
                request,
                retry_after,
            } => write!(
                f,
                "request {} rejected: queue full, retry after {retry_after:?}",
                request.id
            ),
            SubmitError::ShutDown(r) => write!(f, "request {} rejected: shutting down", r.id),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for CoreError {
    fn from(e: SubmitError) -> Self {
        CoreError::Invalid(e.to_string())
    }
}

/// A pending response; [`wait`](Ticket::wait) blocks until the worker
/// replies.
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Result<SampleResponse, CoreError>>,
}

impl Ticket {
    /// The id of the request this ticket tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request is served.
    pub fn wait(self) -> Result<SampleResponse, CoreError> {
        self.rx.recv().map_err(|_| {
            CoreError::Invalid(format!(
                "request {} lost: its worker terminated before replying",
                self.id
            ))
        })?
    }
}

struct Job {
    request: SampleRequest,
    reply: mpsc::SyncSender<Result<SampleResponse, CoreError>>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    tuples_served: AtomicU64,
    /// Per-request reports folded together; its `draw_latency` is the
    /// service-wide latency histogram.
    aggregate: Mutex<RunReport>,
}

/// A point-in-time snapshot of service counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Requests accepted into the queue so far.
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests that errored.
    pub failed: u64,
    /// Requests accepted but not yet finished (queued or in flight).
    pub in_flight: u64,
    /// Total tuples across all completed responses.
    pub tuples_served: u64,
    /// Median per-draw latency across all served requests.
    pub draw_p50: Option<Duration>,
    /// 99th-percentile per-draw latency across all served requests.
    pub draw_p99: Option<Duration>,
    /// Approximate resident bytes of the largest prepared artifact
    /// served so far (base-relation columns + dictionaries + validity
    /// bitmaps — see
    /// [`Relation::memory_bytes`](suj_storage::Relation::memory_bytes)).
    pub prepared_bytes: u64,
    /// Size of the snapshot the served prepared artifact was restored
    /// from; 0 when everything served so far was frozen in-process.
    pub snapshot_bytes: u64,
    /// Wall time of the snapshot restore behind the served artifact
    /// (zero when frozen in-process) — compare against the aggregate's
    /// `warmup_time` for load-vs-prepare.
    pub restore_time: Duration,
    /// Cumulative counters folded over every served request.
    pub aggregate: RunReport,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workers={} submitted={} completed={} failed={} in_flight={} tuples={}",
            self.workers,
            self.submitted,
            self.completed,
            self.failed,
            self.in_flight,
            self.tuples_served,
        )?;
        if let (Some(p50), Some(p99)) = (self.draw_p50, self.draw_p99) {
            write!(f, " draw_p50≤{p50:?} draw_p99≤{p99:?}")?;
        }
        if self.prepared_bytes > 0 {
            write!(f, " prepared_bytes={}", self.prepared_bytes)?;
        }
        if self.snapshot_bytes > 0 {
            write!(
                f,
                " snapshot_bytes={} restore_time={:?}",
                self.snapshot_bytes, self.restore_time
            )?;
        }
        Ok(())
    }
}

/// Serves one request: resolve the target (cached), mint a handle,
/// drive it with the derived stream. Pure in `(engine, root_seed,
/// request)` — the source of the cross-thread determinism guarantee.
fn serve_request(
    engine: &Engine,
    root_seed: u64,
    request: &SampleRequest,
) -> Result<SampleResponse, CoreError> {
    #[cfg(feature = "faults")]
    if request.panic_for_test {
        panic!(
            "fault injection: request {} is a panic pill (chaos testing)",
            request.id
        );
    }
    let prepared = match &request.target {
        RequestTarget::Prepared(p) => p.clone(),
        RequestTarget::Query(q) => engine.prepare(q)?,
    };
    let mut handle = prepared.sampler(request.seed)?;
    let mut rng = SujRng::derive(root_seed, request.seed);
    let (tuples, report) = handle.sample_within(request.n, &mut rng, request.deadline)?;
    Ok(SampleResponse {
        id: request.id,
        tuples,
        report,
    })
}

/// A fixed worker pool serving sampling requests over a shared
/// [`Engine`].
///
/// See the [module docs](self) for queueing and determinism semantics.
/// Dropping the service shuts it down gracefully (queued requests are
/// still served).
pub struct SamplingService {
    tx: Option<mpsc::SyncSender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    counters: Arc<Counters>,
    config: ServiceConfig,
}

impl SamplingService {
    /// Starts the worker pool.
    pub fn start(engine: Engine, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let engine = Arc::new(engine);
        let counters = Arc::new(Counters::default());
        let root_seed = config.root_seed;
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let engine = engine.clone();
                let counters = counters.clone();
                thread::spawn(move || loop {
                    // Hold the receiver lock only while dequeuing, so
                    // siblings serve in parallel.
                    let job = { lock(&rx).recv() };
                    let Ok(job) = job else { return }; // queue closed: graceful exit
                                                       // A request whose deadline passed while queued is
                                                       // answered without touching the engine at all.
                    let expired = job.request.deadline.is_some_and(|d| Instant::now() >= d);
                    // Contain panics from pathological requests: the
                    // worker must survive (a shrinking pool would
                    // eventually deadlock submit), the caller must get
                    // an error, and the counters must balance.
                    let result = if expired {
                        Err(CoreError::DeadlineExceeded)
                    } else {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            serve_request(&engine, root_seed, &job.request)
                        }))
                        .unwrap_or_else(|_| {
                            Err(CoreError::Invalid(format!(
                                "request {} panicked while sampling",
                                job.request.id
                            )))
                        })
                    };
                    match &result {
                        Ok(response) => {
                            counters.completed.fetch_add(1, Ordering::Relaxed);
                            counters
                                .tuples_served
                                .fetch_add(response.tuples.len() as u64, Ordering::Relaxed);
                            lock(&counters.aggregate).merge(&response.report);
                        }
                        Err(_) => {
                            counters.failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // A caller that dropped its ticket is not an error.
                    let _ = job.reply.send(result);
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers: handles,
            counters,
            config: ServiceConfig {
                workers,
                ..config.clone()
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn make_job(request: SampleRequest) -> (Job, Ticket) {
        let (reply, rx) = mpsc::sync_channel(1);
        let id = request.id;
        (Job { request, reply }, Ticket { id, rx })
    }

    /// Enqueues a request, blocking while the bounded queue is full
    /// (backpressure). Returns a [`Ticket`] to wait on.
    // The error is as large as the request on purpose: rejection hands
    // the request back by value so the caller can retry it.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: SampleRequest) -> Result<Ticket, SubmitError> {
        let Some(tx) = &self.tx else {
            return Err(SubmitError::ShutDown(request));
        };
        let (job, ticket) = Self::make_job(request);
        match tx.send(job) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(mpsc::SendError(job)) => Err(SubmitError::ShutDown(job.request)),
        }
    }

    /// Enqueues a request without blocking; a full queue hands the
    /// request back as [`SubmitError::Busy`] with a
    /// [`retry_after_hint`](Self::retry_after_hint).
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, request: SampleRequest) -> Result<Ticket, SubmitError> {
        let Some(tx) = &self.tx else {
            return Err(SubmitError::ShutDown(request));
        };
        let (job, ticket) = Self::make_job(request);
        match tx.try_send(job) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(mpsc::TrySendError::Full(job)) => Err(SubmitError::Busy {
                request: job.request,
                retry_after: self.retry_after_hint(),
            }),
            Err(mpsc::TrySendError::Disconnected(job)) => Err(SubmitError::ShutDown(job.request)),
        }
    }

    /// Suggested back-off when the queue is full: the observed median
    /// draw latency (10 µs until anything was measured) times the
    /// queue capacity — roughly how long the pool needs to drain a
    /// full queue — clamped to `[100 µs, 1 s]`.
    pub fn retry_after_hint(&self) -> Duration {
        const DEFAULT_DRAW: Duration = Duration::from_micros(10);
        const MIN_HINT: Duration = Duration::from_micros(100);
        const MAX_HINT: Duration = Duration::from_secs(1);
        let per_draw = lock(&self.counters.aggregate)
            .draw_latency
            .p50()
            .unwrap_or(DEFAULT_DRAW);
        let capacity = u32::try_from(self.config.queue_capacity).unwrap_or(u32::MAX);
        per_draw.saturating_mul(capacity).clamp(MIN_HINT, MAX_HINT)
    }

    /// Submits a batch and waits for every response, returned in
    /// request order. Individual failures surface as the first error
    /// after all tickets resolved.
    #[allow(clippy::result_large_err)]
    pub fn run_batch(
        &self,
        requests: Vec<SampleRequest>,
    ) -> Result<Vec<SampleResponse>, CoreError> {
        let tickets = requests
            .into_iter()
            .map(|r| self.submit(r))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::from)?;
        let mut responses = Vec::with_capacity(tickets.len());
        let mut first_err = None;
        for ticket in tickets {
            match ticket.wait() {
                Ok(response) => responses.push(response),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let submitted = self.counters.submitted.load(Ordering::Relaxed);
        let completed = self.counters.completed.load(Ordering::Relaxed);
        let failed = self.counters.failed.load(Ordering::Relaxed);
        let aggregate = lock(&self.counters.aggregate).clone();
        ServiceStats {
            workers: self.config.workers,
            submitted,
            completed,
            failed,
            in_flight: submitted.saturating_sub(completed + failed),
            tuples_served: self.counters.tuples_served.load(Ordering::Relaxed),
            draw_p50: aggregate.draw_latency.p50(),
            draw_p99: aggregate.draw_latency.p99(),
            prepared_bytes: aggregate.prepared_bytes,
            snapshot_bytes: aggregate.snapshot_bytes,
            restore_time: aggregate.restore_time,
            aggregate,
        }
    }

    /// Graceful shutdown: stops accepting requests, serves everything
    /// already queued, joins the workers, and returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        // Dropping the sender closes the queue; workers drain the
        // buffered jobs and exit on the disconnect.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SamplingService {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Relation::new(name, schema, tuples).unwrap()
    }

    fn engine() -> Engine {
        let mut c = Catalog::new();
        c.register(rel(
            "r",
            &["a", "b"],
            vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 30]],
        ))
        .unwrap();
        c.register(rel(
            "s",
            &["b", "c"],
            vec![vec![10, 100], vec![10, 101], vec![20, 200], vec![30, 300]],
        ))
        .unwrap();
        c.register(rel("r2", &["a", "b"], vec![vec![1, 10], vec![9, 90]]))
            .unwrap();
        c.register(rel("s2", &["b", "c"], vec![vec![10, 100], vec![90, 900]]))
            .unwrap();
        Engine::new(c)
    }

    fn union_query() -> UnionQuery {
        UnionQuery::set_union()
            .chain("j1", ["r", "s"])
            .unwrap()
            .chain("j2", ["r2", "s2"])
            .unwrap()
    }

    fn responses_by_id(engine: &Engine, workers: usize, requests: usize) -> Vec<SampleResponse> {
        let prepared = engine.prepare(&union_query()).unwrap();
        let service = SamplingService::start(
            engine.clone(),
            ServiceConfig::with_workers(workers).root_seed(77),
        );
        let batch = (0..requests as u64)
            .map(|id| SampleRequest::prepared(id, 6, &prepared))
            .collect();
        let mut responses = service.run_batch(batch).unwrap();
        responses.sort_by_key(|r| r.id);
        let stats = service.shutdown();
        assert_eq!(stats.completed, requests as u64);
        assert_eq!(stats.failed, 0);
        responses
    }

    #[test]
    fn serves_prepared_requests_and_counts() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        let service = SamplingService::start(engine, ServiceConfig::with_workers(2).root_seed(1));
        let tickets: Vec<Ticket> = (0..10u64)
            .map(|id| {
                service
                    .submit(SampleRequest::prepared(id, 4, &prepared))
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            let response = ticket.wait().unwrap();
            assert_eq!(response.tuples.len(), 4);
            assert!(response.report.config.is_some());
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.tuples_served, 40);
        assert!(stats.draw_p50.is_some() && stats.draw_p99.is_some());
        assert!(stats.to_string().contains("completed=10"));
        let final_stats = service.shutdown();
        assert_eq!(final_stats.completed, 10);
    }

    #[test]
    fn worker_count_does_not_change_samples() {
        let engine = engine();
        let one = responses_by_id(&engine, 1, 12);
        let four = responses_by_id(&engine, 4, 12);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.tuples, b.tuples, "request {} diverged", a.id);
        }
    }

    #[test]
    fn query_requests_share_the_prepared_cache() {
        let engine = engine();
        let service =
            SamplingService::start(engine.clone(), ServiceConfig::with_workers(3).root_seed(5));
        let batch = (0..9u64)
            .map(|id| SampleRequest::query(id, 3, union_query()))
            .collect();
        let responses = service.run_batch(batch).unwrap();
        assert_eq!(responses.len(), 9);
        service.shutdown();
        // All nine requests resolved to one cached prepared query,
        // estimated once, and only minted per-request handles.
        assert_eq!(engine.cached_queries(), 1);
        let prepared = engine.prepare(&union_query()).unwrap();
        assert_eq!(prepared.handles(), 9);
        assert!(prepared.estimations() <= 1);
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let engine = engine();
        let service = SamplingService::start(engine, ServiceConfig::with_workers(2));
        let bad = UnionQuery::set_union().chain("j", ["nope", "s"]).unwrap();
        let ticket = service.submit(SampleRequest::query(1, 3, bad)).unwrap();
        assert!(ticket.wait().is_err());
        let stats = service.stats();
        assert_eq!(stats.failed, 1);
        // The pool still serves good requests afterwards.
        let ok = service
            .submit(SampleRequest::query(2, 3, union_query()))
            .unwrap();
        assert_eq!(ok.wait().unwrap().tuples.len(), 3);
        service.shutdown();
    }

    #[test]
    fn try_submit_reports_busy_with_retry_hint() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        // Zero workers is clamped to one; use a tiny queue and a pile
        // of requests to race it full. A single worker with a
        // capacity-1 queue and slow-ish requests will reject at least
        // one try_submit in a burst.
        let service =
            SamplingService::start(engine, ServiceConfig::with_workers(1).queue_capacity(1));
        let mut rejected = 0;
        let mut tickets = Vec::new();
        for id in 0..64u64 {
            match service.try_submit(SampleRequest::prepared(id, 50, &prepared)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Busy {
                    request,
                    retry_after,
                }) => {
                    assert_eq!(request.id, id, "rejected request is handed back");
                    assert!(
                        retry_after >= Duration::from_micros(100)
                            && retry_after <= Duration::from_secs(1),
                        "hint out of bounds: {retry_after:?}"
                    );
                    rejected += 1;
                }
                Err(SubmitError::ShutDown(_)) => unreachable!("service is running"),
            }
        }
        for t in tickets {
            t.wait().unwrap();
        }
        assert!(
            rejected > 0,
            "a capacity-1 queue must reject some of 64 bursts"
        );
        // Busy and ShutDown are distinguishable: after close, the same
        // submission fails as ShutDown, not Busy.
        let mut service = service;
        service.close();
        assert!(matches!(
            service.try_submit(SampleRequest::prepared(99, 1, &prepared)),
            Err(SubmitError::ShutDown(_))
        ));
    }

    #[test]
    fn retry_after_hint_stays_clamped() {
        let engine = engine();
        // Cold service, enormous queue: the default per-draw estimate
        // times the capacity would exceed a second — clamped down.
        let service = SamplingService::start(
            engine.clone(),
            ServiceConfig::with_workers(1).queue_capacity(10_000_000),
        );
        assert_eq!(service.retry_after_hint(), Duration::from_secs(1));
        service.shutdown();
        // Tiny queue: the raw product underflows the floor — clamped up.
        let service =
            SamplingService::start(engine, ServiceConfig::with_workers(1).queue_capacity(1));
        assert_eq!(service.retry_after_hint(), Duration::from_micros(100));
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        let service =
            SamplingService::start(engine, ServiceConfig::with_workers(1).queue_capacity(64));
        let tickets: Vec<Ticket> = (0..16u64)
            .map(|id| {
                service
                    .submit(SampleRequest::prepared(id, 8, &prepared))
                    .unwrap()
            })
            .collect();
        // Shut down immediately: everything queued must still be
        // served before the workers exit.
        let stats = service.shutdown();
        assert_eq!(stats.completed, 16);
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().tuples.len(), 8);
        }
    }

    #[test]
    fn submit_after_shutdown_hands_request_back() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        let mut service = SamplingService::start(engine, ServiceConfig::with_workers(1));
        service.close();
        match service.submit(SampleRequest::prepared(7, 3, &prepared)) {
            Err(SubmitError::ShutDown(r)) => assert_eq!(r.id, 7),
            Err(other) => panic!("expected ShutDown, got {other:?}"),
            Ok(_) => panic!("expected ShutDown, got a ticket"),
        }
    }

    #[test]
    fn expired_deadline_is_a_typed_error_and_pool_survives() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        let service = SamplingService::start(engine, ServiceConfig::with_workers(1).root_seed(3));
        // A deadline already in the past: rejected at dequeue, typed.
        let late = SampleRequest::prepared(1, 4, &prepared)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        let ticket = service.submit(late).unwrap();
        assert_eq!(ticket.wait().unwrap_err(), CoreError::DeadlineExceeded);
        // A zero budget expires between draws at the latest: also typed.
        let starved =
            SampleRequest::prepared(2, 1_000, &prepared).with_budget(Duration::from_nanos(0));
        let ticket = service.submit(starved).unwrap();
        assert_eq!(ticket.wait().unwrap_err(), CoreError::DeadlineExceeded);
        let stats = service.stats();
        assert_eq!(stats.failed, 2);
        // The worker survives and keeps serving.
        let ok = service
            .submit(SampleRequest::prepared(3, 4, &prepared))
            .unwrap();
        assert_eq!(ok.wait().unwrap().tuples.len(), 4);
        service.shutdown();
    }

    #[test]
    fn generous_deadline_does_not_change_samples() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        let service = SamplingService::start(engine, ServiceConfig::with_workers(1).root_seed(9));
        let plain = service
            .submit(SampleRequest::prepared(5, 8, &prepared))
            .unwrap()
            .wait()
            .unwrap();
        let bounded = service
            .submit(
                SampleRequest::prepared(6, 8, &prepared)
                    .with_seed(5)
                    .with_budget(Duration::from_secs(60)),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            plain.tuples, bounded.tuples,
            "a deadline that never fires must not alter the draw sequence"
        );
        service.shutdown();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn panic_pill_is_contained_and_typed() {
        let engine = engine();
        let prepared = engine.prepare(&union_query()).unwrap();
        let service = SamplingService::start(engine, ServiceConfig::with_workers(1));
        let pill = SampleRequest::prepared(1, 4, &prepared).with_panic_for_test();
        let ticket = service.submit(pill).unwrap();
        let err = ticket.wait().unwrap_err();
        assert!(err.to_string().contains("panicked"), "got: {err}");
        // The same (sole) worker still serves.
        let ok = service
            .submit(SampleRequest::prepared(2, 4, &prepared))
            .unwrap();
        assert_eq!(ok.wait().unwrap().tuples.len(), 4);
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    /// Compile-time: the whole serving surface crosses threads.
    #[test]
    fn serving_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<SamplingService>();
        assert_send_sync::<SampleRequest>();
        assert_send_sync::<SampleResponse>();
    }
}
