//! Overlap maps, k-overlaps, union size, and cover sizes (§3.1, §4).
//!
//! An [`OverlapMap`] stores (exact or estimated) sizes `|O_Δ|` for every
//! nonempty subset `Δ ⊆ S` of the workload's joins, indexed by bitmask.
//! On top of it:
//!
//! * **Theorem 3** — the k-overlap decomposition: `|A_j^k|`, the number
//!   of tuples of `J_j` appearing in exactly `k − 1` other joins,
//!   computed top-down from `k = n` with exact binomial coefficients.
//! * **Eq. 1** — `|U| = Σ_j Σ_k |A_j^k| / k`.
//! * **§3.1** — cover sizes by inclusion–exclusion:
//!   `|J'_i| = Σ_{Δ ⊆ S_i} (−1)^{|Δ|} |O_{Δ ∪ {i}}|` over the joins
//!   `S_i` preceding `i` in the cover order.
//!
//! With exact overlaps these three views agree exactly; with estimates
//! they are clamped to stay non-negative.

use crate::error::CoreError;
use suj_stats::binom::binomial_f64 as binom;

/// Sizes `|O_Δ|` for every nonempty `Δ ⊆ S`, indexed by bitmask.
#[derive(Debug, Clone)]
pub struct OverlapMap {
    n: usize,
    /// `sizes[mask]` = `|O_Δ|` where bit `j` of `mask` selects join `j`.
    /// Entry 0 is unused.
    sizes: Vec<f64>,
}

impl OverlapMap {
    /// Builds a map from a full size table (`sizes.len() == 2^n`,
    /// `sizes[0]` ignored). Values must be finite and non-negative.
    pub fn new(n: usize, sizes: Vec<f64>) -> Result<Self, CoreError> {
        if n == 0 || n >= 30 {
            return Err(CoreError::Invalid(format!(
                "overlap map supports 1..=29 joins, got {n}"
            )));
        }
        if sizes.len() != 1 << n {
            return Err(CoreError::Invalid(format!(
                "overlap table must have 2^{n} entries, got {}",
                sizes.len()
            )));
        }
        for (mask, &s) in sizes.iter().enumerate().skip(1) {
            if !s.is_finite() || s < 0.0 {
                return Err(CoreError::Invalid(format!(
                    "overlap size for mask {mask:#b} is invalid: {s}"
                )));
            }
        }
        Ok(Self { n, sizes })
    }

    /// Builds a map by evaluating `f` on every nonempty subset (given as
    /// a sorted index list).
    pub fn from_fn(n: usize, mut f: impl FnMut(&[usize]) -> f64) -> Result<Self, CoreError> {
        if n == 0 || n >= 30 {
            return Err(CoreError::Invalid(format!(
                "overlap map supports 1..=29 joins, got {n}"
            )));
        }
        let mut sizes = vec![0.0f64; 1 << n];
        let mut indices = Vec::with_capacity(n);
        for (mask, entry) in sizes.iter_mut().enumerate().skip(1) {
            indices.clear();
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    indices.push(j);
                }
            }
            *entry = f(&indices);
        }
        Self::new(n, sizes)
    }

    /// Number of joins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `|O_Δ|` by bitmask. Panics on mask 0 or out-of-range masks.
    pub fn overlap_mask(&self, mask: u32) -> f64 {
        assert!(mask != 0 && (mask as usize) < (1 << self.n), "bad mask");
        self.sizes[mask as usize]
    }

    /// `|O_Δ|` for a set of join indices.
    pub fn overlap(&self, joins: &[usize]) -> f64 {
        let mut mask = 0u32;
        for &j in joins {
            assert!(j < self.n, "join index {j} out of range");
            mask |= 1 << j;
        }
        self.overlap_mask(mask)
    }

    /// `|J_j|` (the singleton overlap).
    pub fn join_size(&self, j: usize) -> f64 {
        self.overlap(&[j])
    }

    /// All k-overlaps `|A_j^k|` for join `j` (index 0 of the result is
    /// `k = 1`), per Theorem 3, clamped to be non-negative (estimates may
    /// momentarily dip below zero).
    pub fn k_overlaps(&self, j: usize) -> Vec<f64> {
        let n = self.n;
        assert!(j < n);
        let mut a = vec![0.0f64; n + 1]; // a[k], 1-based
                                         // Base case k = n: |A_j^n| = |O_S|.
        a[n] = self.sizes[(1usize << n) - 1];
        for k in (1..n).rev() {
            // Σ over Δ of size k containing j.
            let mut sum = 0.0;
            for mask in 1..(1u32 << n) {
                if mask & (1 << j) != 0 && mask.count_ones() as usize == k {
                    sum += self.sizes[mask as usize];
                }
            }
            // Deduct higher-order contributions.
            for (r, &ar) in a.iter().enumerate().take(n + 1).skip(k + 1) {
                sum -= binom((r - 1) as u64, (k - 1) as u64) * ar;
            }
            a[k] = sum.max(0.0);
        }
        a.remove(0);
        a
    }

    /// Union size via Eq. 1: `|U| = Σ_j Σ_k |A_j^k| / k`.
    pub fn union_size(&self) -> f64 {
        let mut total = 0.0;
        for j in 0..self.n {
            for (k0, ak) in self.k_overlaps(j).iter().enumerate() {
                total += ak / (k0 + 1) as f64;
            }
        }
        total
    }

    /// Union size via classic inclusion–exclusion (cross-check):
    /// `|U| = Σ_{∅≠Δ} (−1)^{|Δ|+1} |O_Δ|`.
    pub fn union_size_inclusion_exclusion(&self) -> f64 {
        let mut total = 0.0;
        for mask in 1..(1u32 << self.n) {
            let sign = if mask.count_ones() % 2 == 1 {
                1.0
            } else {
                -1.0
            };
            total += sign * self.sizes[mask as usize];
        }
        total.max(0.0)
    }

    /// Cover sizes `|J'_i|` for a given cover order (a permutation of
    /// `0..n`), indexed by join (not by order position). Clamped
    /// non-negative.
    ///
    /// `|J'_i| = Σ_{Δ ⊆ S_i} (−1)^{|Δ|} |O_{Δ ∪ {i}}|`, where `S_i` is
    /// the set of joins preceding `i` in the order.
    pub fn cover_sizes(&self, order: &[usize]) -> Vec<f64> {
        assert_eq!(order.len(), self.n, "order must be a permutation");
        let mut sizes = vec![0.0f64; self.n];
        let mut prior_mask = 0u32;
        for &i in order {
            assert!(i < self.n && prior_mask & (1 << i) == 0, "bad permutation");
            // Enumerate all submasks of prior_mask (including 0).
            let mut acc = 0.0;
            let mut sub = prior_mask;
            loop {
                let sign = if sub.count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                acc += sign * self.sizes[(sub | (1 << i)) as usize];
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & prior_mask;
            }
            sizes[i] = acc.max(0.0);
            prior_mask |= 1 << i;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three joins as explicit sets for exact arithmetic:
    /// J0 = {1..10}, J1 = {6..13}, J2 = {9..20}.
    fn three_set_map() -> OverlapMap {
        let j0: Vec<i32> = (1..=10).collect();
        let j1: Vec<i32> = (6..=13).collect();
        let j2: Vec<i32> = (9..=20).collect();
        let sets = [j0, j1, j2];
        OverlapMap::from_fn(3, |idx| {
            let mut iter = idx.iter();
            let first = &sets[*iter.next().unwrap()];
            first
                .iter()
                .filter(|x| idx.iter().all(|&j| sets[j].contains(x)))
                .count() as f64
        })
        .unwrap()
    }

    #[test]
    fn singleton_sizes() {
        let m = three_set_map();
        assert_eq!(m.join_size(0), 10.0);
        assert_eq!(m.join_size(1), 8.0);
        assert_eq!(m.join_size(2), 12.0);
        assert_eq!(m.overlap(&[0, 1]), 5.0); // {6..10}
        assert_eq!(m.overlap(&[1, 2]), 5.0); // {9..13}
        assert_eq!(m.overlap(&[0, 2]), 2.0); // {9,10}
        assert_eq!(m.overlap(&[0, 1, 2]), 2.0); // {9,10}
    }

    #[test]
    fn k_overlaps_match_hand_computation() {
        let m = three_set_map();
        // J0 = {1..10}: exactly-1 = {1..5} (5), exactly-2 = {6,7,8} (3),
        // exactly-3 = {9,10} (2).
        assert_eq!(m.k_overlaps(0), vec![5.0, 3.0, 2.0]);
        // J1 = {6..13}: exactly-1 = ∅... {6,7,8} in J0, {9,10} in both,
        // {11,12,13} in J2 → exactly-1 = 0, exactly-2 = 6, exactly-3 = 2.
        assert_eq!(m.k_overlaps(1), vec![0.0, 6.0, 2.0]);
        // J2 = {9..20}: exactly-1 = {14..20} (7), exactly-2 = {11,12,13}
        // (3), exactly-3 = {9,10} (2).
        assert_eq!(m.k_overlaps(2), vec![7.0, 3.0, 2.0]);
    }

    #[test]
    fn union_size_via_eq1_matches_truth() {
        let m = three_set_map();
        // U = {1..20} → 20.
        assert!((m.union_size() - 20.0).abs() < 1e-9);
        assert!((m.union_size_inclusion_exclusion() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cover_sizes_partition_the_union() {
        let m = three_set_map();
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [2, 0, 1]] {
            let sizes = m.cover_sizes(&order);
            let total: f64 = sizes.iter().sum();
            assert!(
                (total - 20.0).abs() < 1e-9,
                "cover for order {order:?} must partition the union, got {total}"
            );
        }
        // Hand check for order [0,1,2]:
        // J'_0 = J0 = 10; J'_1 = J1 − J0∩J1 = 8 − 5 = 3;
        // J'_2 = J2 − |J02| − |J12| + |J012| = 12 − 2 − 5 + 2 = 7.
        let sizes = m.cover_sizes(&[0, 1, 2]);
        assert_eq!(sizes, vec![10.0, 3.0, 7.0]);
    }

    #[test]
    fn two_join_map() {
        let m = OverlapMap::new(2, vec![0.0, 10.0, 8.0, 4.0]).unwrap();
        assert_eq!(m.union_size_inclusion_exclusion(), 14.0);
        assert!((m.union_size() - 14.0).abs() < 1e-9);
        assert_eq!(m.k_overlaps(0), vec![6.0, 4.0]);
        assert_eq!(m.k_overlaps(1), vec![4.0, 4.0]);
        let sizes = m.cover_sizes(&[1, 0]);
        assert_eq!(sizes, vec![6.0, 8.0]);
    }

    #[test]
    fn estimates_clamp_negative_k_overlaps() {
        // Inconsistent estimates: pairwise overlap larger than the join.
        let m = OverlapMap::new(2, vec![0.0, 5.0, 5.0, 9.0]).unwrap();
        let a0 = m.k_overlaps(0);
        assert!(a0.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(OverlapMap::new(0, vec![]).is_err());
        assert!(OverlapMap::new(2, vec![0.0; 3]).is_err());
        assert!(OverlapMap::new(1, vec![0.0, f64::NAN]).is_err());
        assert!(OverlapMap::new(1, vec![0.0, -1.0]).is_err());
    }

    #[test]
    fn single_join_degenerates() {
        let m = OverlapMap::new(1, vec![0.0, 42.0]).unwrap();
        assert_eq!(m.union_size(), 42.0);
        assert_eq!(m.cover_sizes(&[0]), vec![42.0]);
        assert_eq!(m.k_overlaps(0), vec![42.0]);
    }

    #[test]
    #[should_panic(expected = "bad mask")]
    fn zero_mask_panics() {
        three_set_map().overlap_mask(0);
    }
}
