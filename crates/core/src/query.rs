//! Declarative union queries.
//!
//! A [`UnionQuery`] describes *what* to sample — joins named by
//! relation, chain/edge topology, set or disjoint semantics, an
//! optional selection predicate — without committing to *how*: no
//! estimator, strategy, cover, or predicate mode appears here. The
//! query is validated and resolved against a
//! [`Catalog`], and the resulting
//! [`ResolvedQuery`] is what the [`Planner`](crate::planner::Planner)
//! consumes to pick the execution configuration (§9's estimator ×
//! algorithm matrix) on the caller's behalf.
//!
//! ```
//! use suj_core::catalog::Catalog;
//! use suj_core::query::{JoinDef, UnionQuery};
//! use suj_storage::{Relation, Schema, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut catalog = Catalog::new();
//! # let rel = |name: &str, attrs: [&str; 2], rows: &[(i64, i64)]| {
//! #     let tuples = rows.iter()
//! #         .map(|&(x, y)| vec![Value::int(x), Value::int(y)].into_iter().collect())
//! #         .collect();
//! #     Relation::new(name, Schema::new(attrs).unwrap(), tuples).unwrap()
//! # };
//! catalog.register(rel("items", ["sku", "cat"], &[(1, 7)]))?;
//! catalog.register(rel("sales", ["sale", "sku"], &[(100, 1)]))?;
//! let query = UnionQuery::set_union()
//!     .join(JoinDef::chain("shop", ["items", "sales"]))?;
//! let resolved = query.resolve(&catalog)?;
//! assert_eq!(resolved.workload.n_joins(), 1);
//! # Ok(())
//! # }
//! ```

use crate::catalog::Catalog;
use crate::error::CoreError;
use crate::predicate_mode::PredicateMode;
use crate::workload::UnionWorkload;
use std::sync::Arc;
use suj_join::{JoinEdge, JoinSpec};
use suj_storage::Predicate;

/// Whether the query samples the set union (`J_1 ∪ … ∪ J_n`, §2) or
/// the disjoint union (`J_1 ⊎ … ⊎ J_n`, Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionSemantics {
    /// Set union: duplicates across joins count once.
    Set,
    /// Disjoint union (bag): each join contributes its full result.
    Disjoint,
}

/// How a declared join connects its relations.
#[derive(Debug, Clone)]
pub(crate) enum Topology {
    /// Equality edges between consecutive relations only.
    Chain,
    /// Edges derived from every shared attribute pair.
    Natural,
    /// Explicit equality edges (star / cyclic shapes).
    Edges(Vec<JoinEdge>),
}

/// One join of a union query: a name plus relation *names* — data is
/// bound at [`UnionQuery::resolve`] time, against a catalog.
#[derive(Debug, Clone)]
pub struct JoinDef {
    name: String,
    relations: Vec<String>,
    topology: Topology,
}

impl JoinDef {
    fn new(
        name: impl Into<String>,
        relations: impl IntoIterator<Item = impl Into<String>>,
        topology: Topology,
    ) -> Self {
        Self {
            name: name.into(),
            relations: relations.into_iter().map(Into::into).collect(),
            topology,
        }
    }

    /// A chain join: consecutive relations joined on their shared
    /// attributes (the paper's chain class).
    #[must_use = "the join definition does nothing until added to a UnionQuery"]
    pub fn chain(
        name: impl Into<String>,
        relations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self::new(name, relations, Topology::Chain)
    }

    /// A natural join: every pair of relations joined on all shared
    /// attributes.
    #[must_use = "the join definition does nothing until added to a UnionQuery"]
    pub fn natural(
        name: impl Into<String>,
        relations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self::new(name, relations, Topology::Natural)
    }

    /// A join with explicit equality edges (acyclic stars, cyclic
    /// shapes); edge indices refer to positions in `relations`.
    #[must_use = "the join definition does nothing until added to a UnionQuery"]
    pub fn with_edges(
        name: impl Into<String>,
        relations: impl IntoIterator<Item = impl Into<String>>,
        edges: Vec<JoinEdge>,
    ) -> Self {
        Self::new(name, relations, Topology::Edges(edges))
    }

    /// The join's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The referenced relation names, in join order.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// The declared topology (snapshot serialization).
    pub(crate) fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Rebuilds a definition from decoded snapshot parts.
    pub(crate) fn from_restored(name: String, relations: Vec<String>, topology: Topology) -> Self {
        Self {
            name,
            relations,
            topology,
        }
    }

    /// Binds relation names against the catalog and builds the spec.
    fn resolve(&self, catalog: &Catalog) -> Result<JoinSpec, CoreError> {
        let relations = self
            .relations
            .iter()
            .map(|name| {
                catalog.get(name).map_err(|_| {
                    CoreError::Invalid(format!(
                        "join `{}` references unknown relation `{name}`; catalog has [{}]",
                        self.name,
                        catalog.names().collect::<Vec<_>>().join(", ")
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let spec = match &self.topology {
            Topology::Chain => JoinSpec::chain(&self.name, relations),
            Topology::Natural => JoinSpec::natural(&self.name, relations),
            Topology::Edges(edges) => JoinSpec::with_edges(&self.name, relations, edges.clone()),
        };
        spec.map_err(CoreError::Join)
    }
}

/// A declarative query over a union of joins.
///
/// Built fluently, validated against a catalog, and executed by the
/// [`Engine`](crate::catalog::Engine), which plans the estimator /
/// strategy / cover / predicate-mode configuration automatically. The
/// explicit-configuration path remains
/// [`SamplerBuilder`](crate::session::SamplerBuilder).
#[derive(Debug, Clone)]
pub struct UnionQuery {
    semantics: UnionSemantics,
    joins: Vec<JoinDef>,
    predicate: Option<Predicate>,
    predicate_mode: Option<PredicateMode>,
}

impl UnionQuery {
    fn new(semantics: UnionSemantics) -> Self {
        Self {
            semantics,
            joins: Vec::new(),
            predicate: None,
            predicate_mode: None,
        }
    }

    /// A set-union query (`J_1 ∪ … ∪ J_n`).
    #[must_use = "the query does nothing until resolved or run through an Engine"]
    pub fn set_union() -> Self {
        Self::new(UnionSemantics::Set)
    }

    /// A disjoint-union query (`J_1 ⊎ … ⊎ J_n`).
    #[must_use = "the query does nothing until resolved or run through an Engine"]
    pub fn disjoint_union() -> Self {
        Self::new(UnionSemantics::Disjoint)
    }

    /// Adds a join; names must be unique within the query.
    pub fn join(mut self, def: JoinDef) -> Result<Self, CoreError> {
        if self.joins.iter().any(|j| j.name == def.name) {
            return Err(CoreError::Invalid(format!(
                "duplicate join name `{}` in union query",
                def.name
            )));
        }
        self.joins.push(def);
        Ok(self)
    }

    /// Shorthand for `join(JoinDef::chain(name, relations))`.
    pub fn chain(
        self,
        name: impl Into<String>,
        relations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, CoreError> {
        self.join(JoinDef::chain(name, relations))
    }

    /// Attaches a selection predicate (§8.3) over the output schema.
    /// The execution mode is chosen by the planner unless
    /// [`predicate_mode`](Self::predicate_mode) pins it.
    #[must_use = "builder methods return the updated query; dropping it discards the predicate"]
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Pins the predicate execution mode instead of letting the
    /// planner choose.
    #[must_use = "builder methods return the updated query; dropping it discards the mode"]
    pub fn predicate_mode(mut self, mode: PredicateMode) -> Self {
        self.predicate_mode = Some(mode);
        self
    }

    /// The query's union semantics.
    pub fn semantics(&self) -> UnionSemantics {
        self.semantics
    }

    /// The declared joins.
    pub fn joins(&self) -> &[JoinDef] {
        &self.joins
    }

    /// The attached predicate, if any (snapshot serialization).
    pub(crate) fn predicate_ref(&self) -> Option<&Predicate> {
        self.predicate.as_ref()
    }

    /// The pinned predicate mode, if any (snapshot serialization).
    pub(crate) fn predicate_mode_ref(&self) -> Option<PredicateMode> {
        self.predicate_mode
    }

    /// Rebuilds a query from decoded snapshot parts. The result must
    /// `Debug`-format identically to the original so engine cache
    /// fingerprints keyed on the query shape still match.
    pub(crate) fn from_restored(
        semantics: UnionSemantics,
        joins: Vec<JoinDef>,
        predicate: Option<Predicate>,
        predicate_mode: Option<PredicateMode>,
    ) -> Self {
        Self {
            semantics,
            joins,
            predicate,
            predicate_mode,
        }
    }

    /// Validates the query against a catalog without keeping the
    /// resolved workload.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), CoreError> {
        self.resolve(catalog).map(|_| ())
    }

    /// Binds every relation name, validates the common output schema,
    /// and returns the executable form.
    pub fn resolve(&self, catalog: &Catalog) -> Result<ResolvedQuery, CoreError> {
        if self.joins.is_empty() {
            return Err(CoreError::NoJoins);
        }
        let specs = self
            .joins
            .iter()
            .map(|def| def.resolve(catalog).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        let workload = Arc::new(UnionWorkload::new(specs)?);
        if let Some(p) = &self.predicate {
            // Surface un-compilable predicates at resolve time, not
            // mid-plan: every referenced attribute must exist in the
            // canonical output schema.
            p.compile(workload.canonical_schema())
                .map_err(CoreError::Storage)?;
        }
        Ok(ResolvedQuery {
            workload,
            semantics: self.semantics,
            predicate: self.predicate.clone(),
            predicate_mode: self.predicate_mode,
        })
    }
}

/// A query bound to catalog data: the validated workload plus the
/// declarative knobs the planner still has to decide on.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// The validated, canonicalized workload.
    pub workload: Arc<UnionWorkload>,
    /// Set or disjoint union.
    pub semantics: UnionSemantics,
    /// Selection predicate, if any.
    pub predicate: Option<Predicate>,
    /// Pinned predicate mode; `None` lets the planner choose.
    pub predicate_mode: Option<PredicateMode>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_storage::{CompareOp, Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Relation::new(name, schema, tuples).unwrap()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(rel("r1", &["a", "b"], vec![vec![1, 10], vec![2, 20]]))
            .unwrap();
        c.register(rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]))
            .unwrap();
        c.register(rel("r2", &["a", "b"], vec![vec![1, 10]]))
            .unwrap();
        c.register(rel("s2", &["b", "c"], vec![vec![10, 100]]))
            .unwrap();
        c
    }

    #[test]
    fn resolves_chains_against_catalog() {
        let q = UnionQuery::set_union()
            .chain("j1", ["r1", "s1"])
            .unwrap()
            .chain("j2", ["r2", "s2"])
            .unwrap();
        let resolved = q.resolve(&catalog()).unwrap();
        assert_eq!(resolved.workload.n_joins(), 2);
        assert_eq!(resolved.semantics, UnionSemantics::Set);
        assert_eq!(resolved.workload.join(0).name(), "j1");
    }

    #[test]
    fn unknown_relation_is_a_named_error() {
        let q = UnionQuery::set_union().chain("j1", ["r1", "nope"]).unwrap();
        let err = q.resolve(&catalog()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope"), "{msg}");
        assert!(msg.contains("j1"), "{msg}");
        assert!(msg.contains("r1"), "available names listed: {msg}");
    }

    #[test]
    fn duplicate_join_names_rejected() {
        let err = UnionQuery::set_union()
            .chain("j", ["r1", "s1"])
            .unwrap()
            .chain("j", ["r2", "s2"]);
        assert!(err.is_err());
    }

    #[test]
    fn empty_query_rejected() {
        assert!(matches!(
            UnionQuery::set_union().resolve(&catalog()),
            Err(CoreError::NoJoins)
        ));
    }

    #[test]
    fn schema_mismatch_surfaces_from_resolution() {
        let mut c = catalog();
        c.register(rel("t", &["x", "y"], vec![vec![1, 2]])).unwrap();
        let q = UnionQuery::set_union()
            .chain("j1", ["r1", "s1"])
            .unwrap()
            .join(JoinDef::natural("j2", ["t"]))
            .unwrap();
        assert!(matches!(
            q.resolve(&c),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn bad_predicate_attribute_rejected_at_resolve() {
        let q = UnionQuery::set_union()
            .chain("j1", ["r1", "s1"])
            .unwrap()
            .predicate(Predicate::cmp("zz", CompareOp::Le, Value::int(1)));
        assert!(q.resolve(&catalog()).is_err());
    }

    #[test]
    fn disjoint_semantics_carried_through() {
        let q = UnionQuery::disjoint_union()
            .chain("j1", ["r1", "s1"])
            .unwrap();
        let resolved = q.resolve(&catalog()).unwrap();
        assert_eq!(resolved.semantics, UnionSemantics::Disjoint);
    }
}
