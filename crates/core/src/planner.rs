//! Cost-based planning of the estimator × algorithm configuration.
//!
//! §9's evaluation is a matrix of estimator × algorithm configurations
//! whose winner flips with overlap ratio, join-size skew, and
//! statistics availability. The [`Planner`] encodes those findings as
//! explicit rules so callers can say *what* to sample (a
//! [`UnionQuery`](crate::query::UnionQuery) or
//! [`Strategy::Auto`](crate::session::Strategy)) and let the system
//! decide *how*:
//!
//! | Rule | Condition | Configuration | Paper |
//! |---|---|---|---|
//! | `DisjointSemantics` | query asks for `⊎` | disjoint-union sampling | Definition 1 |
//! | `CyclicJoin` | some join graph is cyclic | AGM box-splitting weights | §8.2 + AGM bound |
//! | `SingleJoin` | one join | per-join sampling, no union machinery | §2, §3.2 |
//! | `NoStatistics` | no catalog statistics | Algorithm 2 (online estimation) | §6–§7 |
//! | `LowOverlap` | `Σ|Jᵢ|/|∪Jᵢ|` near 1 | Bernoulli union trick | §3 |
//! | `HighOverlap` | otherwise | Algorithm 1 (cover selection) | §4–§5 |
//!
//! Cyclicity is decided *before* the statistics rules on purpose: the
//! histogram probe can fail on cyclic shapes, and letting that failure
//! route a cyclic workload to Algorithm 2 would bypass the sampler
//! built for it.
//!
//! Every [`Plan`] carries the statistics that drove the decision and an
//! [`explain`](Plan::explain) rendering that cites the rule, so served
//! configurations stay auditable.

use crate::algorithm2::OnlineConfig;
use crate::bernoulli::DesignationPolicy;
use crate::cover::CoverStrategy;
use crate::error::CoreError;
use crate::hist_estimator::{DegreeMode, HistogramEstimator};
use crate::overlap::OverlapMap;
use crate::predicate_mode::{can_push_down, PredicateMode};
use crate::query::{ResolvedQuery, UnionSemantics};
use crate::report::PlanSummary;
use crate::session::{Estimator, HistogramOptions, Strategy};
use crate::walk_estimator::WalkEstimatorConfig;
use crate::workload::UnionWorkload;
use std::fmt;
use std::sync::Arc;
use suj_join::weights::build_sampler;
use suj_join::{JoinSampler, WeightKind};

/// Cheap statistics the planner gathers before choosing a
/// configuration: histogram-derived join-size hints and an
/// overlap-ratio probe (§5's statistics-only estimates — no data is
/// scanned beyond per-attribute frequency histograms).
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    /// Estimated `|J_j|` per join, when statistics are available.
    pub join_size_hints: Option<Vec<f64>>,
    /// Estimated `|∪ J_j|`, when statistics are available.
    pub union_size_hint: Option<f64>,
    /// Total rows across all distinct base relations (relations shared
    /// by several joins count once; used to spot workloads small enough
    /// for exact estimation).
    pub total_base_rows: usize,
    /// Number of joins.
    pub n_joins: usize,
    /// Whether `join_size_hints` are exact integer join cardinalities
    /// from the Exact-Weight count tables (every member acyclic and
    /// unsaturated) rather than histogram estimates.
    pub exact_sizes: bool,
    /// The overlap map the probe computed, kept so a plan that selects
    /// the same histogram estimator can hand it to the builder instead
    /// of re-estimating.
    pub(crate) probed_map: Option<OverlapMap>,
    /// The Exact-Weight samplers the exact-size refinement built (count
    /// tables + alias arenas), kept so `freeze()` reuses them instead
    /// of building the same structures a second time.
    pub(crate) probed_samplers: Option<ProbedSamplers>,
}

/// Shared per-join samplers riding along on [`WorkloadStats`] from the
/// planner's exact-size probe into the builder's freeze.
#[derive(Clone)]
pub(crate) struct ProbedSamplers(pub(crate) Vec<Arc<dyn JoinSampler>>);

impl fmt::Debug for ProbedSamplers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProbedSamplers({})", self.0.len())
    }
}

impl WorkloadStats {
    /// Probes the workload with the §5 histogram estimator. Statistics
    /// failures (e.g. shapes the estimator cannot bound) degrade to
    /// [`WorkloadStats::unavailable`] rather than erroring: planning
    /// must always succeed.
    pub fn probe(workload: &UnionWorkload) -> Self {
        let mut stats = Self::unavailable(workload);
        if let Ok(map) = HistogramEstimator::with_olken(workload, DegreeMode::Max)
            .and_then(|est| est.overlap_map())
        {
            stats.join_size_hints =
                Some((0..workload.n_joins()).map(|j| map.join_size(j)).collect());
            stats.union_size_hint = Some(map.union_size());
            stats.probed_map = Some(map);
        }
        stats
    }

    /// Statistics rebuilt from a persisted overlap map (snapshot
    /// restore): the same shape [`probe`](Self::probe) would produce
    /// for that map, without running any estimator. Note the map a
    /// snapshot retains was frozen *after* any predicate push-down
    /// rewrite, so restored hints may describe the rewritten workload.
    pub(crate) fn from_probed(workload: &UnionWorkload, map: OverlapMap) -> Self {
        let mut stats = Self::unavailable(workload);
        stats.join_size_hints = Some((0..map.n()).map(|j| map.join_size(j)).collect());
        stats.union_size_hint = Some(map.union_size());
        stats.probed_map = Some(map);
        stats
    }

    /// Statistics-free stats (the decentralized cold start): only row
    /// and join counts, which are always known.
    pub fn unavailable(workload: &UnionWorkload) -> Self {
        // Count each relation once, even when several joins share it
        // (the common union-of-joins shape): `Arc` identity
        // deduplicates.
        let mut seen = suj_storage::FxHashSet::default();
        let total_base_rows = workload
            .joins()
            .iter()
            .flat_map(|j| j.relations())
            .filter(|r| seen.insert(std::sync::Arc::as_ptr(r) as usize))
            .map(|r| r.len())
            .sum();
        Self {
            join_size_hints: None,
            union_size_hint: None,
            total_base_rows,
            n_joins: workload.n_joins(),
            exact_sizes: false,
            probed_map: None,
            probed_samplers: None,
        }
    }

    /// Whether the probe produced size estimates.
    pub fn available(&self) -> bool {
        self.join_size_hints.is_some() && self.union_size_hint.is_some()
    }

    /// `Σ |Jᵢ|` over the hints.
    pub fn sum_join_sizes(&self) -> Option<f64> {
        self.join_size_hints.as_ref().map(|h| h.iter().sum())
    }

    /// The §3 overlap ratio `Σ|Jᵢ| / |∪Jᵢ|`, clamped to `≥ 1` (exact
    /// values cannot go below 1; estimates may). An estimated-empty
    /// union with empty joins is trivially overlap-free (ratio 1);
    /// `None` only when statistics are unavailable or inconsistent
    /// (zero union under non-zero joins).
    pub fn overlap_ratio(&self) -> Option<f64> {
        let sum = self.sum_join_sizes()?;
        let union = self.union_size_hint?;
        if union <= 0.0 {
            if sum <= 0.0 {
                Some(1.0)
            } else {
                None
            }
        } else {
            Some((sum / union).max(1.0))
        }
    }

    /// Join-size skew: largest hint over smallest non-zero hint.
    /// `None` without statistics or with all-empty joins.
    pub fn size_skew(&self) -> Option<f64> {
        let hints = self.join_size_hints.as_ref()?;
        let max = hints.iter().cloned().fold(0.0f64, f64::max);
        let min = hints
            .iter()
            .cloned()
            .filter(|&h| h > 0.0)
            .fold(f64::INFINITY, f64::min);
        if max <= 0.0 || !min.is_finite() {
            None
        } else {
            Some(max / min)
        }
    }
}

/// Which paper-derived rule selected the configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanRule {
    /// The query asked for disjoint-union semantics.
    DisjointSemantics,
    /// Some join's relation graph contains a cycle: route the cyclic
    /// members to the AGM-bound box-splitting sampler.
    CyclicJoin,
    /// A single join needs no union machinery.
    SingleJoin,
    /// No statistics: estimate online, while sampling.
    NoStatistics,
    /// Overlap ratio near 1: the Bernoulli union trick rarely rejects.
    LowOverlap,
    /// Overlapping joins: non-Bernoulli cover selection wastes nothing.
    HighOverlap,
}

impl PlanRule {
    /// Stable rule name (used in summaries and assertions).
    pub fn name(&self) -> &'static str {
        match self {
            PlanRule::DisjointSemantics => "disjoint-semantics",
            PlanRule::CyclicJoin => "cyclic-join",
            PlanRule::SingleJoin => "single-join",
            PlanRule::NoStatistics => "no-statistics",
            PlanRule::LowOverlap => "low-overlap",
            PlanRule::HighOverlap => "high-overlap",
        }
    }

    /// The paper section(s) justifying the rule.
    pub fn citation(&self) -> &'static str {
        match self {
            PlanRule::DisjointSemantics => "Definition 1, §2",
            PlanRule::CyclicJoin => {
                "§8.2; AGM bound (Atserias–Grohe–Marx); box splitting (Wang & Tao, PODS'23)"
            }
            PlanRule::SingleJoin => "§2, §3.2",
            PlanRule::NoStatistics => "§6–§7 (Algorithm 2)",
            PlanRule::LowOverlap => "§3 (Bernoulli union trick)",
            PlanRule::HighOverlap => "§4–§5 (Algorithm 1, cover selection)",
        }
    }
}

/// Planner thresholds. Defaults follow the §9 evaluation's crossover
/// points; every threshold is overridable for ablation.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Pick Bernoulli when `Σ|Jᵢ|/|∪Jᵢ|` is at most this (§3: the
    /// expected rejection fraction is `1 − 1/ratio`, so 1.25 caps it
    /// at 20%).
    pub bernoulli_max_overlap_ratio: f64,
    /// Use exact (full-join) estimation when the base data has at most
    /// this many rows — the §9 ground-truth configuration, affordable
    /// at toy scale and the most accurate.
    pub exact_max_base_rows: usize,
    /// Order the cover by descending size when the largest join hint
    /// exceeds the smallest by this factor (claiming overlaps early
    /// leaves later joins small residuals, §3.1).
    pub skewed_cover_ratio: f64,
    /// Probe catalog statistics at all; `false` models the
    /// decentralized cold start and always plans Algorithm 2.
    pub use_statistics: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            bernoulli_max_overlap_ratio: 1.25,
            exact_max_base_rows: 512,
            skewed_cover_ratio: 8.0,
            use_statistics: true,
        }
    }
}

/// The planner: consumes a workload (or resolved query) plus cheap
/// statistics, emits an explainable [`Plan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// A planner with explicit thresholds.
    pub fn new(config: PlannerConfig) -> Self {
        Self { config }
    }

    /// A planner that never consults catalog statistics (the
    /// decentralized / cold-start setting): every set-union plan is
    /// Algorithm 2, which estimates parameters while sampling.
    pub fn without_statistics() -> Self {
        Self::new(PlannerConfig {
            use_statistics: false,
            ..PlannerConfig::default()
        })
    }

    /// The active thresholds.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plans a workload under the given union semantics.
    pub fn plan(&self, workload: &UnionWorkload, semantics: UnionSemantics) -> Plan {
        let mut stats = if self.config.use_statistics {
            WorkloadStats::probe(workload)
        } else {
            WorkloadStats::unavailable(workload)
        };
        let cyclic = workload
            .joins()
            .iter()
            .any(|j| suj_join::graph::has_graph_cycle(j));
        if self.config.use_statistics && !cyclic {
            Self::refine_exact_sizes(&mut stats, workload);
        }
        let estimator = self.pick_estimator(&stats);

        let (rule, strategy) = if semantics == UnionSemantics::Disjoint {
            (PlanRule::DisjointSemantics, Strategy::Disjoint)
        } else if cyclic {
            // Decided before the statistics rules: the histogram probe
            // can fail on cyclic shapes, and that failure must not
            // route the workload to Algorithm 2 (whose online machinery
            // never engages the box sampler).
            let strategy = if stats.n_joins == 1 {
                Strategy::Disjoint
            } else {
                Strategy::Rejection
            };
            (PlanRule::CyclicJoin, strategy)
        } else if stats.n_joins == 1 {
            // One join: the disjoint sampler degenerates to plain
            // per-join sampling — no oracles, no cover, no rejection.
            (PlanRule::SingleJoin, Strategy::Disjoint)
        } else if !stats.available() {
            (
                PlanRule::NoStatistics,
                Strategy::Online(OnlineConfig::default()),
            )
        } else {
            // Inconsistent estimates (zero union under non-zero joins,
            // a shape upper-bound estimators cannot produce but that
            // guards against future estimators) default to the
            // conservative high-overlap path.
            match stats.overlap_ratio() {
                Some(r) if r <= self.config.bernoulli_max_overlap_ratio => (
                    PlanRule::LowOverlap,
                    Strategy::Bernoulli(DesignationPolicy::Record),
                ),
                _ => (PlanRule::HighOverlap, Strategy::Rejection),
            }
        };

        // Online estimates its own parameters; every other strategy
        // consumes the picked estimator. Weights are the exact (EW)
        // instantiation on acyclic workloads: extended-Olken weights
        // exist for the decentralized setting where base data cannot be
        // scanned (§5, §9), but an engine that holds the relations can
        // afford exact per-tuple weights, and they cut the
        // join-subroutine rejection rate by an order of magnitude on
        // skewed data. Cyclic workloads get AGM box weights instead;
        // `build_sampler` routes each member join by its own shape, so
        // acyclic members of a mixed union still tree-walk.
        let weight_kind = if cyclic {
            WeightKind::AgmBox
        } else {
            WeightKind::Exact
        };
        let (estimator, weights) = match strategy {
            Strategy::Online(_) => (None, None),
            _ => (Some(estimator), Some(weight_kind)),
        };

        let cover_strategy = match strategy {
            Strategy::Rejection => Some(match stats.size_skew() {
                Some(skew) if skew >= self.config.skewed_cover_ratio => {
                    CoverStrategy::DescendingSize
                }
                _ => CoverStrategy::AsGiven,
            }),
            // Algorithm 2 also orders its cover; record the default so
            // the plan summary matches what the builder reports.
            Strategy::Online(_) => Some(CoverStrategy::AsGiven),
            _ => None,
        };

        Plan {
            strategy,
            estimator,
            weights,
            cover_strategy,
            predicate_mode: None,
            rule,
            stats,
        }
    }

    /// Plans a resolved declarative query: [`plan`](Self::plan) plus
    /// predicate-mode selection (§8.3: push down conjunctive
    /// comparisons; reject-during-sampling for everything else).
    pub fn plan_query(&self, resolved: &ResolvedQuery) -> Plan {
        let mut plan = self.plan(&resolved.workload, resolved.semantics);
        if let Some(p) = &resolved.predicate {
            plan.predicate_mode = Some(resolved.predicate_mode.unwrap_or({
                if can_push_down(p) {
                    PredicateMode::PushDown
                } else {
                    PredicateMode::Reject
                }
            }));
        }
        plan
    }

    /// On an all-acyclic workload, builds the Exact-Weight samplers
    /// once — their count tables yield *exact* integer join sizes — and
    /// (when the probe's statistics are available to supply overlap
    /// context) replaces the histogram's size hints with the exact
    /// figures, clamping the union estimate into its sound bracket
    /// `[max |Jᵢ|, Σ|Jᵢ|]`. The samplers ride along on the stats so
    /// `freeze()` reuses their alias arenas instead of building them a
    /// second time. Skipped entirely when any count saturated `u64`
    /// (the hints would not be exact) or a sampler failed to build.
    fn refine_exact_sizes(stats: &mut WorkloadStats, workload: &UnionWorkload) {
        let built: Result<Vec<Arc<dyn JoinSampler>>, _> = workload
            .joins()
            .iter()
            .map(|j| build_sampler(j.clone(), WeightKind::Exact).map(Arc::from))
            .collect();
        let Ok(samplers) = built else { return };
        let exact: Option<Vec<u64>> = samplers.iter().map(|s| s.size_info().exact).collect();
        if let (Some(exact), true) = (exact, stats.available()) {
            let hints: Vec<f64> = exact.iter().map(|&n| n as f64).collect();
            let sum: f64 = hints.iter().sum();
            let max = hints.iter().cloned().fold(0.0f64, f64::max);
            // The union estimate keeps the probe's overlap information
            // (exact member sizes say nothing about overlap) but is
            // clamped into the bracket the exact sizes prove.
            stats.union_size_hint = stats.union_size_hint.map(|u| u.clamp(max, sum));
            stats.join_size_hints = Some(hints);
            stats.exact_sizes = true;
        }
        stats.probed_samplers = Some(ProbedSamplers(samplers));
    }

    /// Estimator for strategies that need parameters up front.
    fn pick_estimator(&self, stats: &WorkloadStats) -> Estimator {
        if stats.total_base_rows <= self.config.exact_max_base_rows {
            Estimator::Exact
        } else if stats.available() {
            Estimator::Histogram(HistogramOptions::default())
        } else {
            Estimator::Walk(WalkEstimatorConfig::default())
        }
    }
}

/// An executable configuration: strategy, estimator, weights, cover,
/// predicate mode — plus the statistics and rule that produced it.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The sampling strategy.
    pub strategy: Strategy,
    /// Parameter estimator; `None` when the strategy estimates online.
    pub estimator: Option<Estimator>,
    /// Per-join weight instantiation; `None` when the strategy picks
    /// its own.
    pub weights: Option<WeightKind>,
    /// Cover ordering, for strategies that build a cover.
    pub cover_strategy: Option<CoverStrategy>,
    /// Predicate execution mode, when the query carries a predicate.
    pub predicate_mode: Option<PredicateMode>,
    /// The rule that fired.
    pub rule: PlanRule,
    /// The statistics that drove the decision.
    pub stats: WorkloadStats,
}

impl Plan {
    /// Applies the planned knobs to a builder (only where the caller
    /// left them unset, so explicit choices always win). When the plan
    /// keeps the histogram estimator the probe already ran, the probed
    /// overlap map rides along so the build does not re-estimate.
    pub fn apply(&self, builder: crate::session::SamplerBuilder) -> crate::session::SamplerBuilder {
        builder.apply_plan(self)
    }

    /// The compact configuration record stamped into
    /// [`RunReport::config`](crate::report::RunReport::config).
    pub fn summary(&self) -> PlanSummary {
        PlanSummary {
            strategy: self.strategy.to_string(),
            estimator: match &self.estimator {
                Some(est) => est.to_string(),
                None => "online".to_string(),
            },
            weights: self.weights.map(weights_label),
            cover: self.cover_strategy.map(cover_label),
            predicate: self.predicate_mode.map(|m| {
                match m {
                    PredicateMode::PushDown => "push-down",
                    PredicateMode::Reject => "reject",
                }
                .to_string()
            }),
            sizing: self.sizing_label(),
            rule: Some(self.rule.name().to_string()),
        }
    }

    /// Provenance of the join-size figures the decision consumed.
    fn sizing_label(&self) -> Option<String> {
        if self.stats.exact_sizes {
            Some("exact".to_string())
        } else if self.stats.available() {
            Some("histogram".to_string())
        } else {
            None
        }
    }

    /// A human-readable account of the decision, citing the
    /// paper-derived rule that fired.
    pub fn explain(&self) -> String {
        let mut out = format!("plan: {}\n", self.summary());
        let detail = match self.rule {
            PlanRule::DisjointSemantics => {
                "query asks for the disjoint union: each join contributes its full \
                 result, so sample joins proportionally to |Jᵢ| with no overlap \
                 correction"
                    .to_string()
            }
            PlanRule::CyclicJoin => {
                "some join's relation graph contains a cycle: spanning-tree walks \
                 would drop the cycle-closing equalities and reject by consistency \
                 re-checks, so cyclic member joins sample by AGM-bound box \
                 splitting (accepted draws exactly uniform; acceptance rate \
                 OUT/AGM), while acyclic members keep exact tree weights"
                    .to_string()
            }
            PlanRule::SingleJoin => {
                "one join: the union equals the join, so per-join sampling applies \
                 with no cover, oracle, or rejection overhead"
                    .to_string()
            }
            PlanRule::NoStatistics => {
                "no catalog statistics available: Algorithm 2 estimates overlap \
                 parameters online, while sampling, with sample reuse and \
                 backtracking"
                    .to_string()
            }
            PlanRule::LowOverlap => format!(
                "Σ|Jᵢ|/|∪Jᵢ| ≈ {:.3} is near 1: joins barely overlap, so the \
                 Bernoulli union trick rarely rejects",
                self.stats.overlap_ratio().unwrap_or(f64::NAN),
            ),
            PlanRule::HighOverlap => format!(
                "Σ|Jᵢ|/|∪Jᵢ| ≈ {:.3}: overlapping joins make Bernoulli \
                 rejection-heavy, so use Algorithm 1's non-Bernoulli cover \
                 selection, which wastes no samples",
                self.stats.overlap_ratio().unwrap_or(f64::NAN),
            ),
        };
        out.push_str(&format!(
            "rule: {} — {} [{}]\n",
            self.rule.name(),
            detail,
            self.rule.citation()
        ));
        out.push_str(&format!(
            "stats: joins={} base_rows={} Σ|Jᵢ|≈{} |∪Jᵢ|≈{} skew≈{} sizing={}",
            self.stats.n_joins,
            self.stats.total_base_rows,
            fmt_opt(self.stats.sum_join_sizes()),
            fmt_opt(self.stats.union_size_hint),
            fmt_opt(self.stats.size_skew()),
            self.sizing_label().as_deref().unwrap_or("none"),
        ));
        out
    }

    /// Builds the planned sampler over a workload (the
    /// explicit-builder equivalent of this plan).
    pub fn build(
        &self,
        workload: std::sync::Arc<UnionWorkload>,
    ) -> Result<Box<dyn crate::sampler::UnionSampler + Send>, CoreError> {
        let builder = crate::session::SamplerBuilder::for_workload(workload);
        let mut sampler = self.apply(builder).build()?;
        sampler.report_mut().config = Some(self.summary());
        Ok(sampler)
    }
}

/// Stable label for a weight instantiation.
pub(crate) fn weights_label(w: WeightKind) -> String {
    match w {
        WeightKind::Exact => "exact",
        WeightKind::ExtendedOlken => "extended-olken",
        WeightKind::WanderJoin => "wander",
        WeightKind::AgmBox => "agm-box",
    }
    .to_string()
}

/// Stable label for a cover strategy.
pub(crate) fn cover_label(cs: CoverStrategy) -> String {
    match cs {
        CoverStrategy::AsGiven => "as-given",
        CoverStrategy::DescendingSize => "descending-size",
        CoverStrategy::AscendingSize => "ascending-size",
    }
    .to_string()
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn chain(name: &str, a: Vec<Vec<i64>>, b: Vec<Vec<i64>>) -> Arc<suj_join::JoinSpec> {
        Arc::new(
            suj_join::JoinSpec::chain(
                name,
                vec![
                    rel(&format!("{name}_r"), &["a", "b"], a),
                    rel(&format!("{name}_s"), &["b", "c"], b),
                ],
            )
            .unwrap(),
        )
    }

    /// Two joins with zero value overlap.
    fn disjoint_data_workload() -> Arc<UnionWorkload> {
        let j1 = chain(
            "j1",
            vec![vec![1, 10], vec![2, 20]],
            vec![vec![10, 100], vec![20, 200]],
        );
        let j2 = chain(
            "j2",
            vec![vec![7, 70], vec![8, 80]],
            vec![vec![70, 700], vec![80, 800]],
        );
        Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap())
    }

    /// Two identical joins (total overlap).
    fn identical_workload() -> Arc<UnionWorkload> {
        let rows_r = vec![vec![1, 10], vec![2, 20], vec![3, 20]];
        let rows_s = vec![vec![10, 100], vec![20, 200]];
        let j1 = chain("j1", rows_r.clone(), rows_s.clone());
        let j2 = chain("j2", rows_r, rows_s);
        Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap())
    }

    #[test]
    fn low_overlap_picks_bernoulli() {
        let w = disjoint_data_workload();
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::LowOverlap);
        assert!(matches!(plan.strategy, Strategy::Bernoulli(_)));
        let explain = plan.explain();
        assert!(explain.contains("§3"), "{explain}");
        assert!(explain.contains("Bernoulli"), "{explain}");
    }

    #[test]
    fn high_overlap_picks_rejection() {
        let w = identical_workload();
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::HighOverlap);
        assert!(matches!(plan.strategy, Strategy::Rejection));
        assert!(plan.cover_strategy.is_some());
        let explain = plan.explain();
        assert!(explain.contains("§4"), "{explain}");
        assert!(explain.contains("cover"), "{explain}");
    }

    #[test]
    fn disjoint_semantics_always_wins() {
        let w = identical_workload();
        let plan = Planner::default().plan(&w, UnionSemantics::Disjoint);
        assert_eq!(plan.rule, PlanRule::DisjointSemantics);
        assert!(matches!(plan.strategy, Strategy::Disjoint));
        assert!(plan.explain().contains("Definition 1"));
    }

    #[test]
    fn single_join_needs_no_union_machinery() {
        let j = chain("only", vec![vec![1, 10]], vec![vec![10, 100]]);
        let w = Arc::new(UnionWorkload::new(vec![j]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::SingleJoin);
        assert!(matches!(plan.strategy, Strategy::Disjoint));
    }

    #[test]
    fn no_statistics_plans_online() {
        let w = identical_workload();
        let plan = Planner::without_statistics().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::NoStatistics);
        assert!(matches!(plan.strategy, Strategy::Online(_)));
        assert!(plan.estimator.is_none());
        assert!(plan.weights.is_none());
        let explain = plan.explain();
        assert!(explain.contains("§6–§7"), "{explain}");
    }

    #[test]
    fn tiny_workloads_get_exact_estimation() {
        let w = identical_workload();
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert!(matches!(plan.estimator, Some(Estimator::Exact)));
    }

    #[test]
    fn big_workloads_get_histogram_estimation() {
        let planner = Planner::new(PlannerConfig {
            exact_max_base_rows: 0,
            ..PlannerConfig::default()
        });
        let w = identical_workload();
        let plan = planner.plan(&w, UnionSemantics::Set);
        assert!(matches!(plan.estimator, Some(Estimator::Histogram(_))));
        assert!(matches!(plan.weights, Some(WeightKind::Exact)));
    }

    #[test]
    fn empty_join_workload_still_plans() {
        let j1 = chain("full", vec![vec![1, 10]], vec![vec![10, 100]]);
        let j2 = chain("empty", vec![], vec![]);
        let w = Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        // The empty join adds nothing to either Σ|Jᵢ| or |∪|: ratio 1.
        assert_eq!(plan.rule, PlanRule::LowOverlap);
    }

    fn triangle(name: &str, shift: i64) -> Arc<suj_join::JoinSpec> {
        let s = shift;
        Arc::new(
            suj_join::JoinSpec::natural(
                name,
                vec![
                    rel(
                        &format!("{name}_x"),
                        &["a", "b"],
                        vec![vec![1 + s, 2 + s], vec![1 + s, 9 + s]],
                    ),
                    rel(
                        &format!("{name}_y"),
                        &["b", "c"],
                        vec![vec![2 + s, 3 + s], vec![9 + s, 3 + s]],
                    ),
                    rel(&format!("{name}_z"), &["c", "a"], vec![vec![3 + s, 1 + s]]),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn cyclic_union_routes_to_agm_box_before_statistics() {
        let w = Arc::new(UnionWorkload::new(vec![triangle("t1", 0), triangle("t2", 100)]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::CyclicJoin);
        assert!(matches!(plan.strategy, Strategy::Rejection));
        assert_eq!(plan.weights, Some(WeightKind::AgmBox));
        let summary = plan.summary();
        assert_eq!(summary.rule.as_deref(), Some("cyclic-join"));
        assert_eq!(summary.weights.as_deref(), Some("agm-box"));
        let explain = plan.explain();
        assert!(explain.contains("AGM"), "{explain}");
        assert!(explain.contains("cyclic-join"), "{explain}");
        assert!(explain.contains("Atserias"), "{explain}");
    }

    #[test]
    fn single_cyclic_join_goes_disjoint_with_agm_weights() {
        let w = Arc::new(UnionWorkload::new(vec![triangle("t", 0)]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::CyclicJoin);
        assert!(matches!(plan.strategy, Strategy::Disjoint));
        assert_eq!(plan.weights, Some(WeightKind::AgmBox));
    }

    #[test]
    fn mixed_cyclic_acyclic_union_still_routes_to_agm_box() {
        let acyc = chain("c", vec![vec![1, 10]], vec![vec![10, 100]]);
        let w = Arc::new(UnionWorkload::new(vec![acyc, triangle("t", 0)]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert_eq!(plan.rule, PlanRule::CyclicJoin);
        assert_eq!(plan.weights, Some(WeightKind::AgmBox));
    }

    #[test]
    fn disjoint_semantics_on_cyclic_workload_keeps_agm_weights() {
        let w = Arc::new(UnionWorkload::new(vec![triangle("t1", 0), triangle("t2", 100)]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Disjoint);
        assert_eq!(plan.rule, PlanRule::DisjointSemantics);
        assert_eq!(plan.weights, Some(WeightKind::AgmBox));
    }

    #[test]
    fn acyclic_plans_still_use_exact_weights() {
        let plan = Planner::default().plan(&identical_workload(), UnionSemantics::Set);
        assert_eq!(plan.weights, Some(WeightKind::Exact));
        assert_eq!(plan.summary().weights.as_deref(), Some("exact"));
    }

    #[test]
    fn stats_expose_ratio_and_skew() {
        let stats = WorkloadStats::probe(&identical_workload());
        assert!(stats.available());
        let ratio = stats.overlap_ratio().unwrap();
        assert!(
            ratio > 1.5,
            "two identical joins must look overlapping: {ratio}"
        );
        assert!(stats.size_skew().unwrap() >= 1.0);
    }

    #[test]
    fn summary_records_rule_and_config() {
        let w = identical_workload();
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        let summary = plan.summary();
        assert_eq!(summary.strategy, "rejection");
        assert_eq!(summary.rule.as_deref(), Some("high-overlap"));
        assert!(summary.cover.is_some());
    }

    #[test]
    fn acyclic_stats_carry_exact_sizes() {
        let w = identical_workload();
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert!(plan.stats.exact_sizes);
        // Each member joins to exactly (1,10,100),(2,20,200),(3,20,200).
        assert_eq!(plan.stats.join_size_hints.as_deref(), Some(&[3.0, 3.0][..]));
        // The union estimate is clamped into the bracket the exact
        // member sizes prove: [max |Jᵢ|, Σ|Jᵢ|].
        let union = plan.stats.union_size_hint.unwrap();
        assert!(
            (3.0..=6.0).contains(&union),
            "union {union} outside bracket"
        );
        assert_eq!(plan.summary().sizing.as_deref(), Some("exact"));
        assert!(
            plan.explain().contains("sizing=exact"),
            "{}",
            plan.explain()
        );
        // The samplers built for the probe ride along for freeze reuse.
        assert!(plan.stats.probed_samplers.is_some());
    }

    #[test]
    fn cyclic_plans_never_claim_exact_sizes() {
        let w = Arc::new(UnionWorkload::new(vec![triangle("t1", 0), triangle("t2", 100)]).unwrap());
        let plan = Planner::default().plan(&w, UnionSemantics::Set);
        assert!(!plan.stats.exact_sizes);
        assert!(plan.stats.probed_samplers.is_none());
        assert_ne!(plan.summary().sizing.as_deref(), Some("exact"));
    }

    #[test]
    fn without_statistics_skips_exact_size_probe() {
        let plan = Planner::without_statistics().plan(&identical_workload(), UnionSemantics::Set);
        assert!(!plan.stats.exact_sizes);
        assert!(plan.stats.probed_samplers.is_none());
        assert_eq!(plan.summary().sizing, None);
    }
}
