//! The random-walk overlap estimator (§6).
//!
//! During the warm-up phase each join runs wander-join random walks
//! until its Horvitz–Thompson size estimate converges (90% confidence /
//! 1,000 samples in the paper) or a walk budget is exhausted. Each
//! successful walk's tuple is checked against every *other* join's
//! membership oracle — "(N−1)×(M−1) queries with key" — and recorded
//! with its walk probability, yielding:
//!
//! * join sizes `|J_j|` (HT estimates),
//! * overlaps `|O_Δ| = |J_j| · |∩ S'_i| / |S'_j|` (Eq. 2), where `S'_j`
//!   re-weights each sampled tuple by `1/p(t)`,
//! * the Eq. 3 confidence interval for each overlap, and
//! * the per-join `(tuple, p)` pools that Algorithm 2 reuses.

use crate::error::CoreError;
use crate::overlap::OverlapMap;
use crate::workload::UnionWorkload;
use suj_join::{WalkOutcome, WanderJoin};
use suj_stats::{z_value, ConfidenceInterval, HorvitzThompson, SujRng};
use suj_storage::{FxHashMap, Tuple};

/// Warm-up configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalkEstimatorConfig {
    /// Confidence level for termination (paper: 0.9).
    pub confidence: f64,
    /// Relative CI half-width target.
    pub rel_threshold: f64,
    /// Walk budget per join (paper: terminate at 1,000 samples).
    pub max_walks_per_join: u64,
    /// Minimum walks before testing convergence.
    pub min_walks_per_join: u64,
}

impl Default for WalkEstimatorConfig {
    fn default() -> Self {
        Self {
            confidence: 0.9,
            rel_threshold: 0.05,
            max_walks_per_join: 1000,
            min_walks_per_join: 64,
        }
    }
}

/// Output of the random-walk warm-up.
#[derive(Debug)]
pub struct WalkEstimate {
    n: usize,
    /// HT size estimate per join.
    pub join_sizes: Vec<f64>,
    /// Walks spent per join.
    pub walks_spent: Vec<u64>,
    /// Successful-walk pools per join: canonical tuple + walk
    /// probability (consumed by Algorithm 2's sample reuse).
    pub pools: Vec<Vec<(Tuple, f64)>>,
    /// Per join: HT estimator state.
    pub hts: Vec<HorvitzThompson>,
    /// Per join: Σ 1/p of successful walks grouped by full membership
    /// bitmask.
    mask_weights: Vec<FxHashMap<u32, f64>>,
}

/// Runs the warm-up walks for every join.
pub fn walk_warmup(
    workload: &UnionWorkload,
    cfg: &WalkEstimatorConfig,
    rng: &mut SujRng,
) -> Result<WalkEstimate, CoreError> {
    let n = workload.n_joins();
    let mut join_sizes = Vec::with_capacity(n);
    let mut walks_spent = Vec::with_capacity(n);
    let mut pools = Vec::with_capacity(n);
    let mut hts = Vec::with_capacity(n);
    let mut mask_weights = Vec::with_capacity(n);

    for j in 0..n {
        let wander = WanderJoin::new(workload.join(j).clone()).map_err(CoreError::Join)?;
        let mut ht = HorvitzThompson::new();
        let mut pool: Vec<(Tuple, f64)> = Vec::new();
        let mut weights: FxHashMap<u32, f64> = FxHashMap::default();
        let mut walks = 0u64;
        while walks < cfg.max_walks_per_join {
            match wander.walk(rng) {
                WalkOutcome::Success { tuple, probability } => {
                    ht.push_success(probability);
                    let canonical = workload.to_canonical(j, &tuple);
                    let mut mask = 1u32 << j;
                    for (i, oracle) in workload.oracles().iter().enumerate() {
                        if i != j && oracle.contains(&canonical) {
                            mask |= 1 << i;
                        }
                    }
                    *weights.entry(mask).or_insert(0.0) += 1.0 / probability;
                    pool.push((canonical, probability));
                }
                WalkOutcome::Failure => ht.push_failure(),
            }
            walks += 1;
            if walks >= cfg.min_walks_per_join
                && walks.is_multiple_of(32)
                && ht.converged(cfg.confidence, cfg.rel_threshold)
            {
                break;
            }
        }
        join_sizes.push(ht.estimate());
        walks_spent.push(walks);
        pools.push(pool);
        hts.push(ht);
        mask_weights.push(weights);
    }

    Ok(WalkEstimate {
        n,
        join_sizes,
        walks_spent,
        pools,
        hts,
        mask_weights,
    })
}

impl WalkEstimate {
    /// Creates empty accumulators for `n` joins (the fully-online
    /// Algorithm 2 configuration with no warm-up walks).
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            join_sizes: vec![0.0; n],
            walks_spent: vec![0; n],
            pools: vec![Vec::new(); n],
            hts: vec![HorvitzThompson::new(); n],
            mask_weights: vec![FxHashMap::default(); n],
        }
    }

    /// Number of joins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Records a successful walk of join `j` online: updates the HT
    /// estimator and membership-mask weights, optionally adding the
    /// tuple to the reuse pool. Returns the canonical tuple.
    pub fn record_success(
        &mut self,
        workload: &UnionWorkload,
        j: usize,
        local: &Tuple,
        probability: f64,
        pool: bool,
    ) -> Tuple {
        self.hts[j].push_success(probability);
        self.walks_spent[j] += 1;
        let canonical = workload.to_canonical(j, local);
        let mut mask = 1u32 << j;
        for (i, oracle) in workload.oracles().iter().enumerate() {
            if i != j && oracle.contains(&canonical) {
                mask |= 1 << i;
            }
        }
        *self.mask_weights[j].entry(mask).or_insert(0.0) += 1.0 / probability;
        if pool {
            self.pools[j].push((canonical.clone(), probability));
        }
        canonical
    }

    /// Records a failed walk of join `j` (contributes `p(t) = 0`).
    pub fn record_failure(&mut self, j: usize) {
        self.hts[j].push_failure();
        self.walks_spent[j] += 1;
    }

    /// Total walks recorded across joins (the `Σ_j |P[j]|` that gates
    /// Algorithm 2's parameter updates).
    pub fn total_walks(&self) -> u64 {
        self.hts.iter().map(|h| h.walks()).sum()
    }

    /// Refreshes `join_sizes` from the HT estimators, keeping
    /// `fallback[j]` for joins with no successful walks yet (the
    /// histogram initialization of Algorithm 2 line 1).
    pub fn refresh_sizes(&mut self, fallback: &[f64]) {
        for (j, ht) in self.hts.iter().enumerate() {
            self.join_sizes[j] = if ht.successes() > 0 {
                ht.estimate()
            } else {
                fallback[j]
            };
        }
    }

    /// Whether join `j` has any successful walk statistics.
    pub fn has_data(&self, j: usize) -> bool {
        !self.mask_weights[j].is_empty()
    }

    /// Overlap map that falls back to `fallback`'s entries wherever the
    /// anchor join has no walk data yet.
    pub fn overlap_map_with_fallback(
        &self,
        fallback: &OverlapMap,
    ) -> Result<OverlapMap, CoreError> {
        OverlapMap::from_fn(self.n, |indices| {
            if indices.len() == 1 {
                return self.join_sizes[indices[0]].max(0.0);
            }
            let anchor = self.anchor_of(indices);
            if self.has_data(anchor) {
                self.estimate_overlap(indices).max(0.0)
            } else {
                fallback.overlap(indices)
            }
        })
    }

    /// The weighted overlap fraction `|∩_{i∈Δ} S'_i| / |S'_anchor|`
    /// observed from `anchor`'s pool.
    pub fn overlap_fraction(&self, anchor: usize, delta_mask: u32) -> f64 {
        let weights = &self.mask_weights[anchor];
        let total: f64 = weights.values().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let hit: f64 = weights
            .iter()
            .filter(|(m, _)| (*m & delta_mask) == delta_mask)
            .map(|(_, &w)| w)
            .sum();
        hit / total
    }

    /// Picks the anchor join for a subset: the member with the smallest
    /// estimated size (its pool is cheapest to saturate with overlap
    /// hits; any fixed member is valid per §6.2).
    pub fn anchor_of(&self, joins: &[usize]) -> usize {
        *joins
            .iter()
            .min_by(|&&a, &&b| self.join_sizes[a].total_cmp(&self.join_sizes[b]))
            .expect("nonempty subset")
    }

    /// Eq. 2: `|O_Δ| = |J_anchor| · fraction`.
    pub fn estimate_overlap(&self, joins: &[usize]) -> f64 {
        assert!(!joins.is_empty());
        if joins.len() == 1 {
            return self.join_sizes[joins[0]];
        }
        let anchor = self.anchor_of(joins);
        let mut mask = 0u32;
        for &j in joins {
            mask |= 1 << j;
        }
        self.join_sizes[anchor] * self.overlap_fraction(anchor, mask)
    }

    /// Eq. 3: confidence interval for `|O_Δ|`, summing each member
    /// join's variance terms.
    pub fn overlap_ci(&self, joins: &[usize], confidence: f64) -> ConfidenceInterval {
        let estimate = self.estimate_overlap(joins);
        let mut mask = 0u32;
        for &j in joins {
            mask |= 1 << j;
        }
        let mut acc = 0.0;
        let mut total_walks = 0u64;
        for &j in joins {
            let p_hat = self.overlap_fraction(j, mask);
            let t_n = self.hts[j].estimate();
            let t_n2 = self.hts[j].variance();
            acc += t_n2 * p_hat * (1.0 - p_hat) + t_n2 * p_hat + t_n * p_hat * (1.0 - p_hat);
            total_walks += self.hts[j].walks();
        }
        let half_width = if total_walks == 0 {
            f64::INFINITY
        } else {
            z_value(confidence) * (acc / total_walks as f64).sqrt()
        };
        ConfidenceInterval {
            estimate,
            half_width,
            confidence,
        }
    }

    /// Full overlap map from the walk statistics.
    pub fn overlap_map(&self) -> Result<OverlapMap, CoreError> {
        OverlapMap::from_fn(self.n, |indices| self.estimate_overlap(indices).max(0.0))
    }

    /// Worst relative CI half-width over all join-size estimates — the
    /// "confidence level" Algorithm 2 tracks.
    pub fn worst_relative_half_width(&self, confidence: f64) -> f64 {
        self.hts
            .iter()
            .map(|ht| ht.relative_half_width(confidence))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    /// Two chains sharing ~half their base data.
    fn workload() -> UnionWorkload {
        let shared_r: Vec<Vec<i64>> = (0..12).map(|i| vec![i, i % 4]).collect();
        let shared_s: Vec<Vec<i64>> = (0..4).map(|b| vec![b, 100 + b]).collect();
        let mut r1 = shared_r.clone();
        r1.extend((100..108).map(|i| vec![i, i % 4]));
        let mut r2 = shared_r;
        r2.extend((200..204).map(|i| vec![i, i % 4]));

        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r1", &["a", "b"], r1),
                rel("s1", &["b", "c"], shared_s.clone()),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![rel("r2", &["a", "b"], r2), rel("s2", &["b", "c"], shared_s)],
        )
        .unwrap();
        UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap()
    }

    fn cfg_large() -> WalkEstimatorConfig {
        WalkEstimatorConfig {
            confidence: 0.9,
            rel_threshold: 0.01,
            max_walks_per_join: 30_000,
            min_walks_per_join: 1_000,
        }
    }

    #[test]
    fn join_sizes_converge() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut rng = SujRng::seed_from_u64(101);
        let est = walk_warmup(&w, &cfg_large(), &mut rng).unwrap();
        for j in 0..2 {
            let truth = exact.join_size(j) as f64;
            let got = est.join_sizes[j];
            let rel_err = (got - truth).abs() / truth;
            assert!(rel_err < 0.1, "join {j}: got {got} truth {truth}");
        }
    }

    #[test]
    fn overlap_estimate_close_to_truth() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut rng = SujRng::seed_from_u64(102);
        let est = walk_warmup(&w, &cfg_large(), &mut rng).unwrap();
        let truth = exact.overlap.overlap(&[0, 1]);
        let got = est.estimate_overlap(&[0, 1]);
        let rel_err = (got - truth).abs() / truth;
        assert!(rel_err < 0.15, "got {got} truth {truth}");
    }

    #[test]
    fn ci_brackets_truth_most_of_the_time() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let truth = exact.overlap.overlap(&[0, 1]);
        let mut hits = 0;
        for seed in 0..10 {
            let mut rng = SujRng::seed_from_u64(200 + seed);
            let est = walk_warmup(&w, &cfg_large(), &mut rng).unwrap();
            let ci = est.overlap_ci(&[0, 1], 0.95);
            if ci.contains(truth) {
                hits += 1;
            }
        }
        // Eq. 3 assumes independence between the size estimate and the
        // overlap fraction, so its coverage is approximate; require a
        // majority rather than the nominal 95%.
        assert!(hits >= 5, "95% CI hit only {hits}/10 times");
    }

    #[test]
    fn pools_contain_member_tuples() {
        let w = workload();
        let mut rng = SujRng::seed_from_u64(103);
        let est = walk_warmup(&w, &WalkEstimatorConfig::default(), &mut rng).unwrap();
        for j in 0..2 {
            assert!(!est.pools[j].is_empty(), "pool {j} empty");
            for (t, p) in &est.pools[j] {
                assert!(w.contains(j, t), "pooled tuple not a member");
                assert!(*p > 0.0 && *p <= 1.0);
            }
        }
    }

    #[test]
    fn default_config_respects_paper_budget() {
        let cfg = WalkEstimatorConfig::default();
        assert_eq!(cfg.max_walks_per_join, 1000);
        assert!((cfg.confidence - 0.9).abs() < 1e-12);
        let w = workload();
        let mut rng = SujRng::seed_from_u64(104);
        let est = walk_warmup(&w, &cfg, &mut rng).unwrap();
        for j in 0..2 {
            assert!(est.walks_spent[j] <= 1000);
        }
    }

    #[test]
    fn union_size_via_walk_overlaps() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut rng = SujRng::seed_from_u64(105);
        let est = walk_warmup(&w, &cfg_large(), &mut rng).unwrap();
        let map = est.overlap_map().unwrap();
        let got = map.union_size();
        let truth = exact.union_size() as f64;
        let rel_err = (got - truth).abs() / truth;
        assert!(rel_err < 0.15, "union size {got} truth {truth}");
    }

    #[test]
    fn anchor_prefers_smaller_join() {
        let w = workload();
        let mut rng = SujRng::seed_from_u64(106);
        let est = walk_warmup(&w, &cfg_large(), &mut rng).unwrap();
        // j2 (16 results) is smaller than j1 (20 results).
        assert_eq!(est.anchor_of(&[0, 1]), 1);
    }

    #[test]
    fn worst_relative_half_width_reports_convergence() {
        let w = workload();
        let mut rng = SujRng::seed_from_u64(107);
        let est = walk_warmup(&w, &cfg_large(), &mut rng).unwrap();
        assert!(est.worst_relative_half_width(0.9) < 0.05);
    }
}
