//! Sampling over the union of joins — the paper's primary contribution.
//!
//! Given joins `S = {J_1 … J_n}` with a common output schema, this crate
//! returns independent uniform samples from `J_1 ∪ … ∪ J_n` (set union)
//! or `J_1 ⊎ … ⊎ J_n` (disjoint union) without materializing any join:
//!
//! * [`workload`] — a validated union workload: joins canonicalized to a
//!   shared attribute order, with membership oracles.
//! * [`overlap`] — the `OverlapMap` over all join subsets, k-overlap
//!   decomposition `A_j^k` (Theorem 3), union size (Eq. 1), and
//!   inclusion–exclusion cover sizes (§3.1).
//! * [`exact`] — the `FullJoinUnion` ground-truth baseline (§9).
//! * [`hist_estimator`] — the histogram-based overlap estimator
//!   (Theorem 4 over split joins; §5, §8).
//! * [`walk_estimator`] — the random-walk overlap estimator with the
//!   Eq. 3 confidence interval (§6), producing the reuse pools.
//! * [`cover`] — cover construction over join orderings.
//! * [`disjoint`] — sampling the disjoint union (Definition 1).
//! * [`bernoulli`] — the Bernoulli "union trick" sampler (§3).
//! * [`algorithm1`] — non-Bernoulli union sampling with rejection and
//!   revision (Algorithm 1).
//! * [`algorithm2`] — online union sampling with sample reuse and
//!   backtracking (Algorithm 2, §7).
//! * [`predicate_mode`] — selection predicates: push-down and
//!   reject-during-sampling (§8.3).
//! * [`report`] — run reports: acceptance/rejection/revision counters
//!   and phase timing breakdowns (Fig. 5f–h).
//! * [`sampler`] — the unified [`UnionSampler`] trait (a `Send`
//!   object-safe surface) and its incremental [`Draw`] event model.
//! * [`session`] — the fluent [`SamplerBuilder`]: estimator selection,
//!   strategy selection, predicate push-down, all in one validated
//!   place; [`SamplerBuilder::freeze`] yields the `Send + Sync`
//!   [`PreparedSampler`] that mints independent per-thread handles.
//! * [`serve`] — [`SamplingService`]: a bounded-queue `std::thread`
//!   worker pool serving deterministic sampling requests over a shared
//!   engine.
//! * [`snapshot`] — engine snapshot persistence: save/restore the
//!   catalog and every cached prepared query with its frozen estimated
//!   parameters, so a cold replica serves without re-estimating.
//! * [`stream`] — [`SampleStream`], lazy iteration over any built
//!   sampler.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use suj_core::prelude::*;
//! use suj_join::JoinSpec;
//! use suj_stats::SujRng;
//! use suj_storage::{Relation, Schema, Tuple, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rel = |name: &str, attrs: [&str; 2], rows: &[(i64, i64)]| {
//!     let tuples = rows.iter()
//!         .map(|&(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
//!         .collect();
//!     Arc::new(Relation::new(name, Schema::new(attrs).unwrap(), tuples).unwrap())
//! };
//! // Two joins with one shared result tuple.
//! let j1 = JoinSpec::chain("j1", vec![
//!     rel("r1", ["a", "b"], &[(1, 10), (2, 20)]),
//!     rel("s1", ["b", "c"], &[(10, 100), (20, 200)]),
//! ])?;
//! let j2 = JoinSpec::chain("j2", vec![
//!     rel("r2", ["a", "b"], &[(1, 10), (3, 30)]),
//!     rel("s2", ["b", "c"], &[(10, 100), (30, 300)]),
//! ])?;
//!
//! // One validated pipeline: estimator → strategy → sampler.
//! let mut sampler = SamplerBuilder::for_joins(vec![Arc::new(j1), Arc::new(j2)])?
//!     .estimator(Estimator::Exact)
//!     .strategy(Strategy::Rejection)
//!     .build()?;
//! let mut rng = SujRng::seed_from_u64(7);
//!
//! // Batch…
//! let (samples, _report) = sampler.sample(5, &mut rng)?;
//! assert_eq!(samples.len(), 5);
//!
//! // …or lazy streaming with early stop.
//! let trickle: Vec<Tuple> = SampleStream::over(&mut sampler, &mut rng)
//!     .take(2)
//!     .collect::<Result<_, _>>()?;
//! assert_eq!(trickle.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm1;
pub mod algorithm2;
pub mod bernoulli;
pub mod catalog;
pub mod cover;
pub mod disjoint;
pub mod error;
pub mod exact;
pub mod hist_estimator;
pub mod overlap;
pub mod planner;
pub mod predicate_mode;
pub mod query;
pub mod report;
pub mod sampler;
pub mod serve;
pub mod session;
pub mod snapshot;
pub mod stream;
pub mod walk_estimator;
pub mod workload;

pub use algorithm1::{CoverPolicy, SetUnionSampler, UnionSamplerConfig};
pub use algorithm2::{OnlineConfig, OnlineUnionSampler};
pub use bernoulli::{BernoulliUnionSampler, DesignationPolicy};
pub use catalog::{Catalog, Engine, PreparedQuery};
pub use cover::{Cover, CoverStrategy};
pub use error::CoreError;
pub use exact::{full_join_union, ExactUnion};
pub use hist_estimator::{DegreeMode, HistogramEstimator};
pub use overlap::OverlapMap;
pub use planner::{Plan, PlanRule, Planner, PlannerConfig, WorkloadStats};
pub use predicate_mode::{
    can_push_down, push_down, FilteredSampler, PredicateMode, PredicateSampler,
};
pub use query::{JoinDef, ResolvedQuery, UnionQuery, UnionSemantics};
pub use report::{LatencyHistogram, PlanSummary, RunReport};
pub use sampler::{Draw, UnionSampler};
pub use serve::{
    RequestTarget, SampleRequest, SampleResponse, SamplingService, ServiceConfig, ServiceStats,
    SubmitError, Ticket,
};
pub use session::{Estimator, HistogramOptions, PreparedSampler, SamplerBuilder, Strategy};
pub use stream::SampleStream;
pub use walk_estimator::{WalkEstimate, WalkEstimatorConfig};
pub use workload::{UnionWorkload, MAX_JOINS};

/// Commonly used items.
pub mod prelude {
    pub use crate::algorithm1::{CoverPolicy, SetUnionSampler, UnionSamplerConfig};
    pub use crate::algorithm2::{OnlineConfig, OnlineUnionSampler};
    pub use crate::bernoulli::{BernoulliUnionSampler, DesignationPolicy};
    pub use crate::catalog::{Catalog, Engine, PreparedQuery};
    pub use crate::cover::{Cover, CoverStrategy};
    pub use crate::disjoint::DisjointUnionSampler;
    pub use crate::error::CoreError;
    pub use crate::exact::{full_join_union, ExactUnion};
    pub use crate::hist_estimator::{DegreeMode, HistogramEstimator};
    pub use crate::overlap::OverlapMap;
    pub use crate::planner::{Plan, PlanRule, Planner, PlannerConfig, WorkloadStats};
    pub use crate::predicate_mode::{
        can_push_down, push_down, FilteredSampler, PredicateMode, PredicateSampler,
    };
    pub use crate::query::{JoinDef, ResolvedQuery, UnionQuery, UnionSemantics};
    pub use crate::report::{LatencyHistogram, PlanSummary, RunReport};
    pub use crate::sampler::{Draw, UnionSampler};
    pub use crate::serve::{
        RequestTarget, SampleRequest, SampleResponse, SamplingService, ServiceConfig, ServiceStats,
        SubmitError, Ticket,
    };
    pub use crate::session::{
        Estimator, HistogramOptions, PreparedSampler, SamplerBuilder, Strategy,
    };
    pub use crate::stream::SampleStream;
    pub use crate::walk_estimator::{WalkEstimate, WalkEstimatorConfig};
    pub use crate::workload::{UnionWorkload, MAX_JOINS};
}
