//! Run reports: counters and phase timing (Fig. 5f–h, Fig. 6b).
//!
//! Every union sampler produces a [`RunReport`] recording where time and
//! attempts went: parameter estimation (warm-up), producing accepted
//! answers, producing rejected answers, reuse-phase draws, revisions,
//! and backtracking — the quantities the paper's time-breakdown and
//! per-phase figures plot.

use std::fmt;
use std::time::Duration;

/// The resolved configuration that produced a run — strategy,
/// estimator, cover, predicate mode — as recorded in
/// [`RunReport::config`].
///
/// Fig. 5-style benchmark output compares many estimator × algorithm
/// configurations; carrying the resolved configuration inside the
/// report means every table row can identify which configuration
/// produced it, including configurations the planner picked on the
/// caller's behalf ([`Strategy::Auto`](crate::session::Strategy)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Sampling strategy, e.g. `rejection` or `bernoulli(record)`.
    pub strategy: String,
    /// Parameter estimator, e.g. `exact` or `histogram(EO)`; `online`
    /// when the strategy estimates while sampling.
    pub estimator: String,
    /// Per-join weight instantiation, e.g. `exact` or `agm-box`;
    /// `None` when the strategy picks its own weights (online).
    pub weights: Option<String>,
    /// Cover ordering, for strategies that build a cover.
    pub cover: Option<String>,
    /// Predicate mode, when a selection predicate is attached.
    pub predicate: Option<String>,
    /// Provenance of the join-size figures the plan consumed: `exact`
    /// when every member's size came from the Exact-Weight count tables
    /// (integer join cardinalities, not estimates), `histogram` when
    /// the §5 probe supplied them; `None` when no statistics drove the
    /// decision.
    pub sizing: Option<String>,
    /// The planner rule that selected this configuration, when it came
    /// from [`Strategy::Auto`](crate::session::Strategy) or the
    /// [`Engine`](crate::catalog::Engine) rather than explicit calls.
    pub rule: Option<String>,
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strategy={} estimator={}", self.strategy, self.estimator)?;
        if let Some(weights) = &self.weights {
            write!(f, " weights={weights}")?;
        }
        if let Some(cover) = &self.cover {
            write!(f, " cover={cover}")?;
        }
        if let Some(predicate) = &self.predicate {
            write!(f, " predicate={predicate}")?;
        }
        if let Some(sizing) = &self.sizing {
            write!(f, " sizing={sizing}")?;
        }
        if let Some(rule) = &self.rule {
            write!(f, " rule={rule}")?;
        }
        Ok(())
    }
}

/// Number of log₂ latency buckets ([`LatencyHistogram`]); bucket 31
/// absorbs everything from ~1 s upward.
const LATENCY_BUCKETS: usize = 32;

/// A fixed-size log₂ histogram of per-draw latencies.
///
/// Each bucket `i` counts draws whose wall time fell in
/// `[2^(i-1), 2^i)` nanoseconds (bucket 0 is sub-nanosecond); the top
/// bucket saturates. Percentiles report the bucket's upper bound, so
/// they are conservative to within a factor of two — plenty for the
/// serving dashboards ([`SamplingService`](crate::serve::SamplingService)
/// stats) they feed, and mergeable across threads without locks held
/// during sampling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    recorded: u64,
}

impl LatencyHistogram {
    fn bucket(d: Duration) -> usize {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Records one draw latency.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket(d)] += 1;
        self.recorded += 1;
    }

    /// Total draws recorded.
    pub fn count(&self) -> u64 {
        self.recorded
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Folds another histogram into this one (per-service aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.recorded += other.recorded;
    }

    /// The latency at quantile `p` in `[0, 1]` (bucket upper bound);
    /// `None` when nothing was recorded.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        if self.recorded == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.recorded as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_nanos(1u64 << i));
            }
        }
        Some(Duration::from_nanos(1u64 << (LATENCY_BUCKETS - 1)))
    }

    /// Median draw latency.
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(0.50)
    }

    /// 99th-percentile draw latency.
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(0.99)
    }

    /// Counts accrued since `baseline` (an earlier snapshot of the same
    /// histogram).
    fn delta_since(&self, baseline: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (i, (a, b)) in self.counts.iter().zip(&baseline.counts).enumerate() {
            out.counts[i] = a.saturating_sub(*b);
        }
        out.recorded = self.recorded.saturating_sub(baseline.recorded);
        out
    }
}

/// Counters and timings for one sampling run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Tuples in the returned sample.
    pub accepted: u64,
    /// Samples rejected by cover logic (drawn from a join but owned by
    /// an earlier cover member).
    pub rejected_cover: u64,
    /// Rejections inside the join-sampling subroutine (failed walks,
    /// EO acceptance tests, cycle-consistency).
    pub rejected_join: u64,
    /// Revisions performed (Algorithm 1 lines 10–12).
    pub revised: u64,
    /// Tuples removed from the sample by revisions.
    pub revision_removed: u64,
    /// Reuse-pool draws that were accepted (Algorithm 2).
    pub reuse_accepted: u64,
    /// Sample copies emitted through the reuse path (§7's rate R can
    /// emit several per accepted draw).
    pub reuse_copies: u64,
    /// Reuse-pool draws that were rejected (Algorithm 2).
    pub reuse_rejected: u64,
    /// Tuples dropped by backtracking (Algorithm 2, §7).
    pub backtrack_dropped: u64,
    /// Samples rejected by a selection predicate (§8.3
    /// reject-during-sampling mode).
    pub rejected_predicate: u64,
    /// Parameter-update rounds performed (Algorithm 2).
    pub update_rounds: u64,
    /// Per-join draw counts (how often each join was selected).
    pub join_draws: Vec<u64>,
    /// Approximate resident bytes of the prepared artifact's base
    /// relations (columns + dictionaries + validity bitmaps), stamped
    /// at instantiation by
    /// [`PreparedSampler`](crate::session::PreparedSampler). A
    /// property of the prepared state, not a counter: `delta_since`
    /// carries it through and `merge` keeps the maximum.
    pub prepared_bytes: u64,
    /// Size in bytes of the snapshot this prepared artifact was
    /// restored from; 0 when it was frozen in-process. Same property
    /// semantics as [`prepared_bytes`](Self::prepared_bytes).
    pub snapshot_bytes: u64,
    /// Wall time of the snapshot restore that produced this prepared
    /// artifact (zero when frozen in-process) — the load half of the
    /// load-vs-prepare comparison, where
    /// [`warmup_time`](Self::warmup_time) is the prepare half. Property
    /// semantics: `delta_since` carries it through, `merge` keeps the
    /// maximum.
    pub restore_time: Duration,
    /// The resolved configuration that produced this run (stamped by
    /// [`SamplerBuilder::build`](crate::session::SamplerBuilder::build)).
    pub config: Option<PlanSummary>,
    /// Per-draw latency distribution (recorded by the batch
    /// [`sample`](crate::sampler::UnionSampler::sample) loop and by the
    /// serving workers); p50/p99 feed
    /// [`SamplingService`](crate::serve::SamplingService) stats.
    pub draw_latency: LatencyHistogram,
    /// Warm-up / parameter-estimation wall time.
    pub warmup_time: Duration,
    /// Wall time spent producing accepted answers.
    pub accepted_time: Duration,
    /// Wall time spent producing rejected answers.
    pub rejected_time: Duration,
    /// Wall time spent in the reuse phase (Algorithm 2).
    pub reuse_time: Duration,
    /// Wall time spent updating estimates and backtracking.
    pub update_time: Duration,
}

impl RunReport {
    /// Creates an empty report for `n_joins` joins.
    pub fn new(n_joins: usize) -> Self {
        Self {
            join_draws: vec![0; n_joins],
            ..Self::default()
        }
    }

    /// Total sampling attempts that reached the cover logic.
    pub fn attempts(&self) -> u64 {
        self.accepted + self.rejected_cover + self.reuse_rejected
    }

    /// Overall acceptance ratio (accepted / attempts); 1.0 when no
    /// attempts were made.
    pub fn acceptance_ratio(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            1.0
        } else {
            self.accepted as f64 / attempts as f64
        }
    }

    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.warmup_time
            + self.accepted_time
            + self.rejected_time
            + self.reuse_time
            + self.update_time
    }

    /// Samples accepted through the regular (non-reuse) path.
    pub fn regular_accepted(&self) -> u64 {
        self.accepted.saturating_sub(self.reuse_copies)
    }

    /// Mean time per accepted tuple in the regular phase; `None` when
    /// nothing was accepted there (Fig. 6b's per-sample metric).
    pub fn time_per_accepted(&self) -> Option<Duration> {
        let regular = self.regular_accepted();
        if regular == 0 {
            None
        } else {
            Some(self.accepted_time / regular.max(1) as u32)
        }
    }

    /// Mean time per reuse-emitted sample copy; `None` when the reuse
    /// phase never accepted (Fig. 6b's reuse-phase metric).
    pub fn time_per_reuse_accepted(&self) -> Option<Duration> {
        if self.reuse_copies == 0 {
            None
        } else {
            Some(self.reuse_time / self.reuse_copies.max(1) as u32)
        }
    }

    /// Counters and timings accrued since `baseline` (which must be an
    /// earlier snapshot of the same report). Samplers accumulate one
    /// cumulative report across their lifetime; batch APIs use this to
    /// return per-call reports.
    pub fn delta_since(&self, baseline: &RunReport) -> RunReport {
        let dur = |a: Duration, b: Duration| a.checked_sub(b).unwrap_or_default();
        RunReport {
            accepted: self.accepted.saturating_sub(baseline.accepted),
            rejected_cover: self.rejected_cover.saturating_sub(baseline.rejected_cover),
            rejected_join: self.rejected_join.saturating_sub(baseline.rejected_join),
            revised: self.revised.saturating_sub(baseline.revised),
            revision_removed: self
                .revision_removed
                .saturating_sub(baseline.revision_removed),
            reuse_accepted: self.reuse_accepted.saturating_sub(baseline.reuse_accepted),
            reuse_copies: self.reuse_copies.saturating_sub(baseline.reuse_copies),
            reuse_rejected: self.reuse_rejected.saturating_sub(baseline.reuse_rejected),
            backtrack_dropped: self
                .backtrack_dropped
                .saturating_sub(baseline.backtrack_dropped),
            rejected_predicate: self
                .rejected_predicate
                .saturating_sub(baseline.rejected_predicate),
            update_rounds: self.update_rounds.saturating_sub(baseline.update_rounds),
            join_draws: self
                .join_draws
                .iter()
                .enumerate()
                .map(|(j, &d)| d.saturating_sub(baseline.join_draws.get(j).copied().unwrap_or(0)))
                .collect(),
            prepared_bytes: self.prepared_bytes,
            snapshot_bytes: self.snapshot_bytes,
            restore_time: self.restore_time,
            config: self.config.clone(),
            draw_latency: self.draw_latency.delta_since(&baseline.draw_latency),
            warmup_time: dur(self.warmup_time, baseline.warmup_time),
            accepted_time: dur(self.accepted_time, baseline.accepted_time),
            rejected_time: dur(self.rejected_time, baseline.rejected_time),
            reuse_time: dur(self.reuse_time, baseline.reuse_time),
            update_time: dur(self.update_time, baseline.update_time),
        }
    }

    /// Overwrites this report with `other`'s contents, reusing the
    /// `join_draws` allocation (hot-path alternative to `clone`).
    pub fn copy_from(&mut self, other: &RunReport) {
        let RunReport {
            accepted,
            rejected_cover,
            rejected_join,
            revised,
            revision_removed,
            reuse_accepted,
            reuse_copies,
            reuse_rejected,
            backtrack_dropped,
            rejected_predicate,
            update_rounds,
            join_draws,
            prepared_bytes,
            snapshot_bytes,
            restore_time,
            config,
            draw_latency,
            warmup_time,
            accepted_time,
            rejected_time,
            reuse_time,
            update_time,
        } = other;
        self.prepared_bytes = *prepared_bytes;
        self.snapshot_bytes = *snapshot_bytes;
        self.restore_time = *restore_time;
        self.accepted = *accepted;
        self.rejected_cover = *rejected_cover;
        self.rejected_join = *rejected_join;
        self.revised = *revised;
        self.revision_removed = *revision_removed;
        self.reuse_accepted = *reuse_accepted;
        self.reuse_copies = *reuse_copies;
        self.reuse_rejected = *reuse_rejected;
        self.backtrack_dropped = *backtrack_dropped;
        self.rejected_predicate = *rejected_predicate;
        self.update_rounds = *update_rounds;
        self.join_draws.clear();
        self.join_draws.extend_from_slice(join_draws);
        self.config.clone_from(config);
        self.draw_latency.clone_from(draw_latency);
        self.warmup_time = *warmup_time;
        self.accepted_time = *accepted_time;
        self.rejected_time = *rejected_time;
        self.reuse_time = *reuse_time;
        self.update_time = *update_time;
    }

    /// Folds another report's counters, timings, and latency histogram
    /// into this one — the aggregation direction
    /// ([`delta_since`](Self::delta_since) is the subtraction
    /// direction). Used to accumulate per-handle / per-request deltas
    /// into a [`PreparedQuery`](crate::catalog::PreparedQuery) or
    /// [`SamplingService`](crate::serve::SamplingService) aggregate. A
    /// missing `config` is adopted from `other`; an existing one is
    /// kept.
    pub fn merge(&mut self, other: &RunReport) {
        // Exhaustive destructuring (like `copy_from`): adding a field
        // to `RunReport` must fail to compile until aggregation
        // handles it.
        let RunReport {
            accepted,
            rejected_cover,
            rejected_join,
            revised,
            revision_removed,
            reuse_accepted,
            reuse_copies,
            reuse_rejected,
            backtrack_dropped,
            rejected_predicate,
            update_rounds,
            join_draws,
            prepared_bytes,
            snapshot_bytes,
            restore_time,
            config,
            draw_latency,
            warmup_time,
            accepted_time,
            rejected_time,
            reuse_time,
            update_time,
        } = other;
        // A footprint property, not a counter: folding reports over the
        // same prepared artifact must not multiply it.
        self.prepared_bytes = self.prepared_bytes.max(*prepared_bytes);
        self.snapshot_bytes = self.snapshot_bytes.max(*snapshot_bytes);
        self.restore_time = self.restore_time.max(*restore_time);
        self.accepted += accepted;
        self.rejected_cover += rejected_cover;
        self.rejected_join += rejected_join;
        self.revised += revised;
        self.revision_removed += revision_removed;
        self.reuse_accepted += reuse_accepted;
        self.reuse_copies += reuse_copies;
        self.reuse_rejected += reuse_rejected;
        self.backtrack_dropped += backtrack_dropped;
        self.rejected_predicate += rejected_predicate;
        self.update_rounds += update_rounds;
        if self.join_draws.len() < join_draws.len() {
            self.join_draws.resize(join_draws.len(), 0);
        }
        for (a, b) in self.join_draws.iter_mut().zip(join_draws) {
            *a += b;
        }
        if self.config.is_none() {
            self.config.clone_from(config);
        }
        self.draw_latency.merge(draw_latency);
        self.warmup_time += *warmup_time;
        self.accepted_time += *accepted_time;
        self.rejected_time += *rejected_time;
        self.reuse_time += *reuse_time;
        self.update_time += *update_time;
    }

    /// One-line human-readable summary; includes the resolved
    /// configuration when one was recorded.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "accepted={} rejected_cover={} rejected_join={} revised={} reuse={}({} rej) backtrack_dropped={} acceptance={:.3} total={:?}",
            self.accepted,
            self.rejected_cover,
            self.rejected_join,
            self.revised,
            self.reuse_accepted,
            self.reuse_rejected,
            self.backtrack_dropped,
            self.acceptance_ratio(),
            self.total_time(),
        );
        if let (Some(p50), Some(p99)) = (self.draw_latency.p50(), self.draw_latency.p99()) {
            s.push_str(&format!(" draw_p50≤{p50:?} draw_p99≤{p99:?}"));
        }
        if self.prepared_bytes > 0 {
            s.push_str(&format!(" prepared_bytes={}", self.prepared_bytes));
        }
        if self.snapshot_bytes > 0 {
            s.push_str(&format!(
                " snapshot_bytes={} restore_time={:?}",
                self.snapshot_bytes, self.restore_time
            ));
        }
        if let Some(config) = &self.config {
            s.push_str(&format!(" [{config}]"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_totals() {
        let mut r = RunReport::new(3);
        r.accepted = 80;
        r.rejected_cover = 20;
        assert_eq!(r.attempts(), 100);
        assert!((r.acceptance_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(r.join_draws.len(), 3);
    }

    #[test]
    fn empty_report_is_benign() {
        let r = RunReport::new(0);
        assert_eq!(r.attempts(), 0);
        assert_eq!(r.acceptance_ratio(), 1.0);
        assert!(r.time_per_accepted().is_none());
        assert!(r.time_per_reuse_accepted().is_none());
        assert_eq!(r.total_time(), Duration::ZERO);
    }

    #[test]
    fn per_sample_times() {
        let mut r = RunReport::new(1);
        r.accepted = 4;
        r.accepted_time = Duration::from_millis(40);
        assert_eq!(r.time_per_accepted(), Some(Duration::from_millis(10)));
        r.reuse_accepted = 2;
        r.reuse_copies = 2;
        r.reuse_time = Duration::from_millis(10);
        assert_eq!(r.time_per_reuse_accepted(), Some(Duration::from_millis(5)));
        // Copies emitted by reuse do not count toward the regular phase.
        r.accepted += 2;
        assert_eq!(r.regular_accepted(), 4);
        assert_eq!(r.time_per_accepted(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn config_survives_delta_copy_and_summary() {
        let mut r = RunReport::new(1);
        r.config = Some(PlanSummary {
            strategy: "rejection".into(),
            estimator: "histogram(EO)".into(),
            weights: Some("exact".into()),
            cover: Some("as-given".into()),
            predicate: None,
            sizing: None,
            rule: None,
        });
        r.accepted = 3;
        let baseline = RunReport::new(1);
        let delta = r.delta_since(&baseline);
        assert_eq!(delta.config, r.config);
        let mut copy = RunReport::new(1);
        copy.copy_from(&r);
        assert_eq!(copy.config, r.config);
        let s = r.summary();
        assert!(s.contains("strategy=rejection"), "{s}");
        assert!(s.contains("estimator=histogram(EO)"), "{s}");
        assert!(s.contains("cover=as-given"), "{s}");
    }

    #[test]
    fn summary_mentions_key_counters() {
        let mut r = RunReport::new(1);
        r.accepted = 7;
        r.revised = 2;
        let s = r.summary();
        assert!(s.contains("accepted=7"));
        assert!(s.contains("revised=2"));
        // No latency recorded: percentiles stay out of the summary.
        assert!(!s.contains("draw_p50"));
    }

    #[test]
    fn latency_histogram_percentiles() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        // 99 fast draws (~1µs), one slow (~1ms).
        for _ in 0..99 {
            h.record(Duration::from_nanos(900));
        }
        h.record(Duration::from_micros(900));
        assert_eq!(h.count(), 100);
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= Duration::from_micros(2), "p50 = {p50:?}");
        assert!(p50 <= p99);
        // The slow draw is the 100th rank; p99 covers rank 99 (fast).
        assert!(p99 <= Duration::from_micros(2), "p99 = {p99:?}");
        assert!(h.percentile(1.0).unwrap() >= Duration::from_micros(512));
    }

    #[test]
    fn latency_histogram_merge_and_delta() {
        let mut a = LatencyHistogram::default();
        a.record(Duration::from_nanos(100));
        let baseline = a.clone();
        a.record(Duration::from_micros(100));
        let delta = a.delta_since(&baseline);
        assert_eq!(delta.count(), 1);
        let mut b = LatencyHistogram::default();
        b.merge(&a);
        b.merge(&delta);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn merge_accumulates_counters_and_latency() {
        let mut total = RunReport::new(2);
        let mut delta = RunReport::new(2);
        delta.accepted = 5;
        delta.rejected_cover = 2;
        delta.join_draws = vec![3, 4];
        delta.draw_latency.record(Duration::from_micros(1));
        delta.accepted_time = Duration::from_millis(2);
        delta.config = Some(PlanSummary {
            strategy: "rejection".into(),
            ..Default::default()
        });
        total.merge(&delta);
        total.merge(&delta);
        assert_eq!(total.accepted, 10);
        assert_eq!(total.rejected_cover, 4);
        assert_eq!(total.join_draws, vec![6, 8]);
        assert_eq!(total.draw_latency.count(), 2);
        assert_eq!(total.accepted_time, Duration::from_millis(4));
        // Config adopted on first merge, kept thereafter.
        assert_eq!(total.config.as_ref().unwrap().strategy, "rejection");
    }

    #[test]
    fn prepared_bytes_is_a_property_not_a_counter() {
        let mut total = RunReport::new(1);
        let mut delta = RunReport::new(1);
        delta.prepared_bytes = 4096;
        total.merge(&delta);
        total.merge(&delta);
        // Folding reports over the same prepared artifact keeps the
        // footprint, never doubles it.
        assert_eq!(total.prepared_bytes, 4096);
        // delta_since carries the property through.
        let baseline = RunReport::new(1);
        assert_eq!(delta.delta_since(&baseline).prepared_bytes, 4096);
        let mut copy = RunReport::new(1);
        copy.copy_from(&delta);
        assert_eq!(copy.prepared_bytes, 4096);
        // Surfaced in the summary only when known.
        assert!(delta.summary().contains("prepared_bytes=4096"));
        assert!(!RunReport::new(1).summary().contains("prepared_bytes"));
    }

    #[test]
    fn snapshot_cost_is_a_property_not_a_counter() {
        let mut total = RunReport::new(1);
        let mut delta = RunReport::new(1);
        delta.snapshot_bytes = 1024;
        delta.restore_time = Duration::from_millis(7);
        total.merge(&delta);
        total.merge(&delta);
        assert_eq!(total.snapshot_bytes, 1024);
        assert_eq!(total.restore_time, Duration::from_millis(7));
        let baseline = RunReport::new(1);
        let d = delta.delta_since(&baseline);
        assert_eq!(d.snapshot_bytes, 1024);
        assert_eq!(d.restore_time, Duration::from_millis(7));
        let mut copy = RunReport::new(1);
        copy.copy_from(&delta);
        assert_eq!(copy.snapshot_bytes, 1024);
        // Printed only for restored artifacts.
        assert!(delta.summary().contains("snapshot_bytes=1024"));
        assert!(delta.summary().contains("restore_time"));
        assert!(!RunReport::new(1).summary().contains("snapshot_bytes"));
    }

    #[test]
    fn summary_reports_latency_percentiles_when_recorded() {
        let mut r = RunReport::new(1);
        r.accepted = 1;
        r.draw_latency.record(Duration::from_micros(3));
        let s = r.summary();
        assert!(s.contains("draw_p50"), "{s}");
        assert!(s.contains("draw_p99"), "{s}");
    }
}
