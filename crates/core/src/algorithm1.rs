//! Algorithm 1: non-Bernoulli union sampling with rejection and
//! revision (§3.1).
//!
//! Join selection draws `J_j` with probability `|J'_j| / |U|` over a
//! cover. A tuple sampled from `J_j` is kept only if `J_j` owns it:
//!
//! * [`CoverPolicy::Record`] — the paper's Algorithm 1: ownership is
//!   tracked in the `orig_join` record of *seen* tuples. Sampling a
//!   tuple from an earlier-cover join than its recorded owner triggers
//!   a **revision**: ownership moves to the earlier join and every copy
//!   of the tuple is purged from the result (lines 10–12). In the
//!   incremental API purges surface as [`Draw::Retract`] events.
//! * [`CoverPolicy::MembershipOracle`] — enforces the cover exactly via
//!   hash-index membership checks (`t` is rejected iff some
//!   earlier-cover join contains it). No revisions are ever needed; this
//!   is the ablation variant available in the centralized setting, and
//!   the one whose [`SampleStream`](crate::stream::SampleStream) output
//!   is exactly i.i.d.
//!
//! Expected cost is `N + N log N` total join-sampling calls (Theorem 2).
//!
//! The sampler implements [`UnionSampler`]; construct it directly or —
//! preferably — through
//! [`SamplerBuilder`](crate::session::SamplerBuilder) with
//! [`Strategy::Rejection`](crate::session::Strategy).

use crate::cover::{Cover, CoverStrategy};
use crate::error::CoreError;
use crate::overlap::OverlapMap;
use crate::report::RunReport;
use crate::sampler::{Draw, UnionSampler};
use crate::workload::UnionWorkload;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use suj_join::weights::build_sampler;
use suj_join::{JoinSampler, WeightKind};
use suj_stats::{Categorical, SujRng};
use suj_storage::{FxHashMap, Tuple};

/// How cover ownership is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverPolicy {
    /// Paper Algorithm 1: record of seen tuples + revision.
    Record,
    /// Exact membership checks against earlier-cover joins (no
    /// revisions).
    MembershipOracle,
}

/// Configuration of the set-union sampler.
#[derive(Debug, Clone, Copy)]
pub struct UnionSamplerConfig {
    /// Weight instantiation for the per-join subroutine (§3.2).
    pub weights: WeightKind,
    /// Cover ownership policy.
    pub policy: CoverPolicy,
    /// Cover ordering strategy.
    pub strategy: CoverStrategy,
    /// Attempt budget inside the join-sampling subroutine per draw
    /// (guards pathological estimates).
    pub max_join_tries: u64,
    /// Cover-rejection retries within one join selection. Theorem 1
    /// requires the tuple accepted after selecting `J_j` to be uniform
    /// over the cover region `J'_j`, so cover-rejected tuples are
    /// redrawn from the *same* join; this caps that loop when a cover
    /// region is (near-)empty but its estimated size is positive.
    pub max_cover_retries: u64,
}

impl Default for UnionSamplerConfig {
    fn default() -> Self {
        Self {
            weights: WeightKind::Exact,
            policy: CoverPolicy::Record,
            strategy: CoverStrategy::AsGiven,
            max_join_tries: 1_000_000,
            max_cover_retries: 100_000,
        }
    }
}

/// The set-union sampler (Algorithm 1).
pub struct SetUnionSampler {
    workload: Arc<UnionWorkload>,
    cover: Cover,
    selection: Option<Categorical>,
    /// Per-join samplers. Shared (`Arc`) so a frozen
    /// [`PreparedSampler`](crate::session::PreparedSampler) can mint
    /// many independent handles without re-running the per-join weight
    /// precomputation; sampling goes through `&self`, so sharing is
    /// free.
    samplers: Vec<Arc<dyn JoinSampler>>,
    config: UnionSamplerConfig,
    report: RunReport,
    /// `orig_join` record of seen tuples (paper line 4).
    orig: FxHashMap<Tuple, usize>,
    /// Live emission indices per tuple (Record policy), for revision
    /// purges.
    positions: FxHashMap<Tuple, Vec<u64>>,
    /// Joins discovered to be unsampleable (estimate said nonempty,
    /// data says empty).
    dead: Vec<bool>,
    emitted: u64,
    pending: VecDeque<Draw>,
    /// Reusable canonicalization scratch (one accepted draw each).
    canon_scratch: Vec<suj_storage::Value>,
}

impl SetUnionSampler {
    /// Builds the sampler from an overlap map (exact or estimated).
    pub fn new(
        workload: Arc<UnionWorkload>,
        overlap: &OverlapMap,
        config: UnionSamplerConfig,
    ) -> Result<Self, CoreError> {
        let samplers = workload
            .joins()
            .iter()
            .map(|j| build_sampler(j.clone(), config.weights).map(Arc::from))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::Join)?;
        Self::with_shared(workload, overlap, config, samplers)
    }

    /// Builds the sampler over pre-built per-join samplers (shared with
    /// other handles of the same prepared query). All mutable record /
    /// report state starts fresh, so handles built over the same shared
    /// parts are fully independent sampling processes.
    pub fn with_shared(
        workload: Arc<UnionWorkload>,
        overlap: &OverlapMap,
        config: UnionSamplerConfig,
        samplers: Vec<Arc<dyn JoinSampler>>,
    ) -> Result<Self, CoreError> {
        if overlap.n() != workload.n_joins() {
            return Err(CoreError::Invalid(format!(
                "overlap map covers {} joins, workload has {}",
                overlap.n(),
                workload.n_joins()
            )));
        }
        if samplers.len() != workload.n_joins() {
            return Err(CoreError::Invalid(format!(
                "{} join samplers for {} joins",
                samplers.len(),
                workload.n_joins()
            )));
        }
        let cover = Cover::build(overlap, config.strategy);
        let selection = cover.selection();
        let n_joins = workload.n_joins();
        Ok(Self {
            workload,
            cover,
            selection,
            samplers,
            config,
            report: RunReport::new(n_joins),
            orig: FxHashMap::default(),
            positions: FxHashMap::default(),
            dead: vec![false; n_joins],
            emitted: 0,
            pending: VecDeque::new(),
            canon_scratch: Vec::new(),
        })
    }

    /// The cover in use.
    pub fn cover(&self) -> &Cover {
        &self.cover
    }
}

impl UnionSampler for SetUnionSampler {
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError> {
        if let Some(event) = self.pending.pop_front() {
            return Ok(event);
        }
        if self.selection.is_none() {
            return Err(CoreError::Invalid(
                "cannot sample a nonempty set from an empty union".into(),
            ));
        }
        let n_joins = self.workload.n_joins();
        loop {
            let j = self.selection.as_ref().expect("checked above").draw(rng);
            if self.dead[j] {
                if self.dead.iter().all(|&d| d) {
                    return Err(CoreError::Invalid(
                        "all joins are empty but the union estimate is positive".into(),
                    ));
                }
                continue;
            }
            self.report.join_draws[j] += 1;

            // Theorem 1 semantics: the tuple emitted for this selection
            // must be uniform over the cover region J'_j, so cover
            // rejections redraw from the SAME join.
            let mut retries = 0u64;
            while retries < self.config.max_cover_retries {
                retries += 1;
                let start = Instant::now();
                let (t_local, tries) =
                    self.samplers[j].sample_until_accepted(rng, self.config.max_join_tries);
                self.report.rejected_join += tries.saturating_sub(1);
                let Some(t_local) = t_local else {
                    self.report.rejected_time += start.elapsed();
                    self.dead[j] = true;
                    break;
                };
                let t = self
                    .workload
                    .to_canonical_into(j, &t_local, &mut self.canon_scratch);

                let accept = match self.config.policy {
                    CoverPolicy::MembershipOracle => {
                        // Reject iff an earlier-cover join contains t.
                        !(0..n_joins).any(|i| {
                            i != j && self.cover.precedes(i, j) && self.workload.contains(i, &t)
                        })
                    }
                    CoverPolicy::Record => match self.orig.get(&t).copied() {
                        Some(i) if i == j => true,
                        Some(i) if self.cover.precedes(i, j) => false, // line 8
                        Some(i) => {
                            // Revision (lines 10–12): j precedes i. Move
                            // ownership to j and retract every live copy
                            // of t.
                            debug_assert!(self.cover.precedes(j, i));
                            self.orig.insert(t.clone(), j);
                            if let Some(ps) = self.positions.get_mut(&t) {
                                for &p in ps.iter() {
                                    self.pending.push_back(Draw::Retract(p));
                                    self.report.revision_removed += 1;
                                }
                                ps.clear();
                            }
                            self.report.revised += 1;
                            true
                        }
                        None => {
                            self.orig.insert(t.clone(), j);
                            true
                        }
                    },
                };

                if accept {
                    let idx = self.emitted;
                    if self.config.policy == CoverPolicy::Record {
                        self.positions.entry(t.clone()).or_default().push(idx);
                    }
                    self.emitted += 1;
                    self.report.accepted += 1;
                    self.report.accepted_time += start.elapsed();
                    if self.pending.is_empty() {
                        return Ok(Draw::Tuple(idx, t));
                    }
                    // Revision retractions precede the accepted tuple.
                    self.pending.push_back(Draw::Tuple(idx, t));
                    return Ok(self.pending.pop_front().expect("nonempty queue"));
                } else {
                    self.report.rejected_cover += 1;
                    self.report.rejected_time += start.elapsed();
                }
            }
            // Retry budget exhausted (or the join just died): reselect.
        }
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn workload(&self) -> &Arc<UnionWorkload> {
        &self.workload
    }

    fn may_retract(&self) -> bool {
        // The membership oracle enforces the cover exactly; only the
        // record policy revises (and hence retracts).
        self.config.policy == CoverPolicy::Record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    /// Three overlapping joins over (a, b, c).
    fn workload() -> Arc<UnionWorkload> {
        let mk = |name: &str, extra_a: i64, extra_b: i64| {
            let mut r_rows: Vec<Vec<i64>> = vec![
                vec![1, 10],
                vec![2, 10],
                vec![3, 20],
                vec![extra_a, extra_b],
            ];
            r_rows.dedup();
            // b = 10 has degree 2 in s so Extended Olken must reject.
            let s_rows = vec![
                vec![10, 100],
                vec![10, 101],
                vec![20, 200],
                vec![extra_b, extra_b * 10],
            ];
            suj_join::JoinSpec::chain(
                name,
                vec![
                    rel(&format!("{name}_r"), &["a", "b"], r_rows),
                    rel(&format!("{name}_s"), &["b", "c"], s_rows),
                ],
            )
            .unwrap()
        };
        Arc::new(
            UnionWorkload::new(vec![
                Arc::new(mk("j1", 7, 70)),
                Arc::new(mk("j2", 8, 80)),
                Arc::new(mk("j3", 9, 90)),
            ])
            .unwrap(),
        )
    }

    fn assert_uniform_sample(
        samples: &[Tuple],
        universe: &suj_storage::FxHashSet<Tuple>,
        p_min: f64,
    ) {
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for t in samples {
            assert!(universe.contains(t), "non-member sampled: {t}");
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        let observed: Vec<u64> = universe
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(
            outcome.p_value > p_min,
            "not uniform: chi2 = {}, p = {}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn oracle_policy_is_uniform() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler = SetUnionSampler::new(
            w,
            &exact.overlap,
            UnionSamplerConfig {
                policy: CoverPolicy::MembershipOracle,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        let n = 2_000 * exact.union_size();
        let (samples, report) = sampler.sample(n, &mut rng).unwrap();
        assert_eq!(samples.len(), n);
        assert_eq!(report.revised, 0, "oracle policy never revises");
        assert_uniform_sample(&samples, &exact.union_set, 0.001);
    }

    #[test]
    fn record_policy_is_uniform_and_revises() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler = SetUnionSampler::new(
            w,
            &exact.overlap,
            UnionSamplerConfig {
                policy: CoverPolicy::Record,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(2);
        let n = 2_000 * exact.union_size();
        let (samples, report) = sampler.sample(n, &mut rng).unwrap();
        assert_eq!(samples.len(), n);
        assert!(
            report.revised > 0,
            "overlapping joins must trigger revisions"
        );
        // The record policy is asymptotically uniform; allow a softer
        // threshold than the oracle's.
        assert_uniform_sample(&samples, &exact.union_set, 1e-4);
    }

    #[test]
    fn eo_weights_also_uniform() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler = SetUnionSampler::new(
            w,
            &exact.overlap,
            UnionSamplerConfig {
                weights: WeightKind::ExtendedOlken,
                policy: CoverPolicy::MembershipOracle,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(3);
        let n = 1_500 * exact.union_size();
        let (samples, report) = sampler.sample(n, &mut rng).unwrap();
        assert!(report.rejected_join > 0, "EO must reject in the subroutine");
        assert_uniform_sample(&samples, &exact.union_set, 0.001);
    }

    #[test]
    fn cover_strategies_preserve_uniformity() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        for strategy in [CoverStrategy::DescendingSize, CoverStrategy::AscendingSize] {
            let mut sampler = SetUnionSampler::new(
                w.clone(),
                &exact.overlap,
                UnionSamplerConfig {
                    policy: CoverPolicy::MembershipOracle,
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rng = SujRng::seed_from_u64(4);
            let n = 1_500 * exact.union_size();
            let (samples, _) = sampler.sample(n, &mut rng).unwrap();
            assert_uniform_sample(&samples, &exact.union_set, 0.001);
        }
    }

    #[test]
    fn estimated_parameters_still_yield_member_tuples() {
        // Histogram-estimated (loose) parameters: samples remain valid
        // members and the requested count is met; uniformity degrades
        // gracefully with estimate quality (§9 measures this).
        let w = workload();
        let est = crate::hist_estimator::HistogramEstimator::with_olken(
            &w,
            crate::hist_estimator::DegreeMode::Max,
        )
        .unwrap();
        let map = est.overlap_map().unwrap();
        let mut sampler = SetUnionSampler::new(
            w.clone(),
            &map,
            UnionSamplerConfig {
                policy: CoverPolicy::MembershipOracle,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(5);
        let (samples, _) = sampler.sample(500, &mut rng).unwrap();
        assert_eq!(samples.len(), 500);
        let exact = full_join_union(&w).unwrap();
        for t in &samples {
            assert!(exact.union_set.contains(t));
        }
    }

    #[test]
    fn zero_requested_samples() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler =
            SetUnionSampler::new(w, &exact.overlap, UnionSamplerConfig::default()).unwrap();
        let mut rng = SujRng::seed_from_u64(6);
        let (samples, report) = sampler.sample(0, &mut rng).unwrap();
        assert!(samples.is_empty());
        assert_eq!(report.accepted, 0);
    }

    #[test]
    fn workload_with_empty_join_still_fulfills() {
        // One join has no results; estimated parameters may still give
        // it positive mass. The sampler must mark it dead and fulfill
        // the request from the live join.
        let live = suj_join::JoinSpec::chain(
            "live",
            vec![
                rel("lr", &["a", "b"], vec![vec![1, 10], vec![2, 20]]),
                rel("ls", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        let empty = suj_join::JoinSpec::chain(
            "empty",
            vec![
                rel("er", &["a", "b"], vec![vec![9, 90]]),
                rel("es", &["b", "c"], vec![vec![80, 800]]),
            ],
        )
        .unwrap();
        let w = Arc::new(UnionWorkload::new(vec![Arc::new(live), Arc::new(empty)]).unwrap());
        // Deliberately wrong estimates giving the empty join mass.
        let map = OverlapMap::new(2, vec![0.0, 2.0, 5.0, 0.0]).unwrap();
        let mut sampler = SetUnionSampler::new(w, &map, UnionSamplerConfig::default()).unwrap();
        let mut rng = SujRng::seed_from_u64(8);
        let (samples, report) = sampler.sample(50, &mut rng).unwrap();
        assert_eq!(samples.len(), 50);
        assert!(report.accepted >= 50);
    }

    #[test]
    fn mismatched_overlap_map_rejected() {
        let w = workload();
        let bad = OverlapMap::new(1, vec![0.0, 5.0]).unwrap();
        assert!(SetUnionSampler::new(w, &bad, UnionSamplerConfig::default()).is_err());
    }

    #[test]
    fn expected_cost_tracks_theorem2() {
        // Theorem 2: expected join-subroutine calls ≤ N + N log N. With
        // exact weights the only waste is cover rejection, so total
        // draws should sit well under the bound.
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler = SetUnionSampler::new(
            w,
            &exact.overlap,
            UnionSamplerConfig {
                policy: CoverPolicy::MembershipOracle,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(7);
        let n = 4_000usize;
        let (_, report) = sampler.sample(n, &mut rng).unwrap();
        let draws: u64 = report.join_draws.iter().sum();
        let bound = n as f64 + n as f64 * (n as f64).ln();
        assert!(
            (draws as f64) < bound,
            "draws {draws} exceed N + N ln N = {bound}"
        );
    }

    #[test]
    fn incremental_draws_match_batch() {
        // draw()-by-draw consumption equals one batch call seed-for-seed
        // (the oracle policy never retracts, so the streams align 1:1).
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let cfg = UnionSamplerConfig {
            policy: CoverPolicy::MembershipOracle,
            ..Default::default()
        };
        let mut batch = SetUnionSampler::new(w.clone(), &exact.overlap, cfg).unwrap();
        let mut incremental = SetUnionSampler::new(w, &exact.overlap, cfg).unwrap();
        let mut rng_a = SujRng::seed_from_u64(17);
        let mut rng_b = SujRng::seed_from_u64(17);
        let (samples, _) = batch.sample(200, &mut rng_a).unwrap();
        let mut one_by_one = Vec::new();
        while one_by_one.len() < 200 {
            if let Draw::Tuple(_, t) = incremental.draw(&mut rng_b).unwrap() {
                one_by_one.push(t);
            }
        }
        assert_eq!(samples, one_by_one);
    }

    #[test]
    fn record_policy_retractions_reference_live_emissions() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler =
            SetUnionSampler::new(w, &exact.overlap, UnionSamplerConfig::default()).unwrap();
        let mut rng = SujRng::seed_from_u64(18);
        let mut emitted = 0u64;
        let mut retracted = 0u64;
        for _ in 0..5_000 {
            match sampler.draw(&mut rng).unwrap() {
                Draw::Tuple(idx, _) => {
                    assert_eq!(idx, emitted, "emission indices are sequential");
                    emitted += 1;
                }
                Draw::Retract(idx) => {
                    assert!(idx < emitted, "retraction of a future emission");
                    retracted += 1;
                }
            }
        }
        assert_eq!(emitted, sampler.emitted());
        assert_eq!(retracted, sampler.report().revision_removed);
    }
}
