//! Lazy, incremental consumption of any [`UnionSampler`].
//!
//! [`SampleStream`] adapts a sampler's [`Draw`]
//! event stream into an `Iterator<Item = Result<Tuple, CoreError>>`, so
//! Algorithm 2's backtracking/refinement runs *while* the caller
//! consumes samples, and the caller can stop at any point — no batch
//! size decided up front:
//!
//! ```
//! use std::sync::Arc;
//! use suj_core::prelude::*;
//! use suj_stats::SujRng;
//! use suj_storage::{Relation, Schema, Tuple, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let rel = |name: &str, attrs: [&str; 2], rows: &[(i64, i64)]| {
//! #     let tuples = rows.iter()
//! #         .map(|&(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
//! #         .collect();
//! #     Arc::new(Relation::new(name, Schema::new(attrs).unwrap(), tuples).unwrap())
//! # };
//! # let j1 = suj_join::JoinSpec::chain("j1", vec![
//! #     rel("r1", ["a", "b"], &[(1, 10), (2, 20)]),
//! #     rel("s1", ["b", "c"], &[(10, 100), (20, 200)]),
//! # ])?;
//! # let workload = Arc::new(UnionWorkload::new(vec![Arc::new(j1)])?);
//! let mut sampler = SamplerBuilder::for_workload(workload)
//!     .estimator(Estimator::Exact)
//!     .build()?;
//! let mut rng = SujRng::seed_from_u64(7);
//! let first_three: Vec<Tuple> = SampleStream::over(&mut sampler, &mut rng)
//!     .take(3)
//!     .collect::<Result<_, _>>()?;
//! assert_eq!(first_three.len(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! # Retraction semantics
//!
//! A stream cannot un-yield a tuple it already handed to the caller, so
//! [`Draw::Retract`](crate::sampler::Draw) events are counted (see
//! [`SampleStream::retracted`]) rather than applied. For samplers that
//! never retract (disjoint, Bernoulli, Algorithm 1 with the membership
//! oracle policy) the stream is exactly i.i.d. uniform; for the record
//! policy and Algorithm 2 it carries the same asymptotic-uniformity
//! guarantee the paper proves for their output. Callers needing exact
//! finite-sample semantics under retraction should use
//! [`UnionSampler::sample`] instead.

use crate::error::CoreError;
use crate::sampler::{Draw, UnionSampler};
use suj_stats::SujRng;
use suj_storage::Tuple;

/// A lazy iterator of i.i.d. samples over a built sampler.
///
/// The stream is infinite (sampling is with replacement) — bound it
/// with [`Iterator::take`]. After the first error the stream fuses and
/// yields `None`.
pub struct SampleStream<'a, S: UnionSampler + ?Sized> {
    sampler: &'a mut S,
    rng: &'a mut SujRng,
    retracted: u64,
    yielded: u64,
    failed: bool,
}

impl<'a, S: UnionSampler + ?Sized> SampleStream<'a, S> {
    /// Streams over any sampler: a concrete one, a
    /// `Box<dyn UnionSampler>`, or a `&mut dyn UnionSampler`.
    pub fn over(sampler: &'a mut S, rng: &'a mut SujRng) -> Self {
        Self {
            sampler,
            rng,
            retracted: 0,
            yielded: 0,
            failed: false,
        }
    }

    /// Tuples yielded so far.
    pub fn yielded(&self) -> u64 {
        self.yielded
    }

    /// Retraction events observed so far (revision / backtracking of
    /// already-yielded samples).
    pub fn retracted(&self) -> u64 {
        self.retracted
    }

    /// The underlying sampler's cumulative report.
    pub fn report(&self) -> &crate::report::RunReport {
        self.sampler.report()
    }
}

impl<S: UnionSampler + ?Sized> Iterator for SampleStream<'_, S> {
    type Item = Result<Tuple, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            match self.sampler.draw(self.rng) {
                Ok(Draw::Tuple(_, t)) => {
                    self.yielded += 1;
                    return Some(Ok(t));
                }
                Ok(Draw::Retract(_)) => {
                    self.retracted += 1;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{CoverPolicy, SetUnionSampler, UnionSamplerConfig};
    use crate::exact::full_join_union;
    use crate::workload::UnionWorkload;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema, Value};

    fn workload() -> Arc<UnionWorkload> {
        let rel = |name: &str, attrs: [&str; 2], rows: &[(i64, i64)]| {
            let tuples = rows
                .iter()
                .map(|&(x, y)| suj_storage::Tuple::new(vec![Value::int(x), Value::int(y)]))
                .collect();
            Arc::new(Relation::new(name, Schema::new(attrs).unwrap(), tuples).unwrap())
        };
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r1", ["a", "b"], &[(1, 10), (2, 10), (3, 20)]),
                rel("s1", ["b", "c"], &[(10, 100), (20, 200)]),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![
                rel("r2", ["a", "b"], &[(1, 10), (9, 90)]),
                rel("s2", ["b", "c"], &[(10, 100), (90, 900)]),
            ],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    #[test]
    fn stream_yields_members_lazily() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler = SetUnionSampler::new(
            w,
            &exact.overlap,
            UnionSamplerConfig {
                policy: CoverPolicy::MembershipOracle,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        let samples: Vec<_> = SampleStream::over(&mut sampler, &mut rng)
            .take(50)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(samples.len(), 50);
        for t in &samples {
            assert!(exact.union_set.contains(t));
        }
    }

    #[test]
    fn oracle_stream_matches_batch_seed_for_seed() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let cfg = UnionSamplerConfig {
            policy: CoverPolicy::MembershipOracle,
            ..Default::default()
        };
        let mut a = SetUnionSampler::new(w.clone(), &exact.overlap, cfg).unwrap();
        let mut b = SetUnionSampler::new(w, &exact.overlap, cfg).unwrap();
        let mut rng_a = SujRng::seed_from_u64(2);
        let mut rng_b = SujRng::seed_from_u64(2);
        let (batch, _) = a.sample(100, &mut rng_a).unwrap();
        let streamed: Vec<_> = SampleStream::over(&mut b, &mut rng_b)
            .take(100)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn stream_fuses_after_error() {
        let w = workload();
        // A zero overlap map → empty union → draw errors.
        let map = crate::overlap::OverlapMap::new(2, vec![0.0; 4]).unwrap();
        let mut sampler = SetUnionSampler::new(w, &map, UnionSamplerConfig::default()).unwrap();
        let mut rng = SujRng::seed_from_u64(3);
        let mut stream = SampleStream::over(&mut sampler, &mut rng);
        assert!(matches!(stream.next(), Some(Err(_))));
        assert!(stream.next().is_none());
    }
}
