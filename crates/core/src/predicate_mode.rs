//! Selection predicates over joins (§8.3).
//!
//! Two execution modes, selectable per sampler via [`PredicateMode`]:
//!
//! * **Push-down** ([`push_down`], [`PredicateMode::PushDown`]): filter
//!   each base relation with the conjuncts that mention only its
//!   attributes, then sample the filtered join. Works for both
//!   estimator families and is how the UQ2 workload applies its `Q2`
//!   predicates.
//! * **Reject-during-sampling** ([`FilteredSampler`] for a single join,
//!   [`PredicateSampler`] / [`PredicateMode::Reject`] for a whole
//!   union): wrap any sampler and reject samples failing the predicate
//!   — "works with only random-walk [style sampling] … most appropriate
//!   for selection predicates that are not very selective" since it
//!   adds a rejection factor equal to the selectivity.
//!
//! [`SamplerBuilder::predicate`](crate::session::SamplerBuilder::predicate)
//! applies either mode to any strategy.

use crate::error::CoreError;
use crate::report::RunReport;
use crate::sampler::{Draw, UnionSampler};
use crate::workload::UnionWorkload;
use std::sync::Arc;
use suj_join::{JoinSampler, JoinSpec, SampleOutcome};
use suj_stats::SujRng;
use suj_storage::{CompiledPredicate, FxHashMap, Predicate, Relation};

/// How a selection predicate is applied to a union sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateMode {
    /// Rewrite every join's base relations before estimation and
    /// sampling (§8.3 push-down). Requires a conjunction of
    /// single-attribute comparisons.
    PushDown,
    /// Reject sampled tuples failing the predicate (§8.3
    /// reject-during-sampling). Works for arbitrary predicates over the
    /// output schema.
    Reject,
}

/// Pushes a conjunctive predicate down to base relations, returning an
/// equivalent filtered join.
///
/// The predicate must be decomposable into single-attribute conjuncts
/// (`True`, `Compare`, or `And` of those); each conjunct filters every
/// relation containing its attribute. For natural joins this preserves
/// semantics exactly: `σ_{A op c}(R ⋈ S) = σ(R) ⋈ σ(S)`.
pub fn push_down(
    spec: &JoinSpec,
    predicate: &Predicate,
    name: &str,
) -> Result<JoinSpec, CoreError> {
    let conjuncts = flatten_conjuncts(predicate)?;

    let mut new_relations: Vec<Arc<Relation>> = Vec::with_capacity(spec.n_relations());
    for rel in spec.relations() {
        // Conjuncts whose attribute lives in this relation.
        let applicable: Vec<&Predicate> = conjuncts
            .iter()
            .copied()
            .filter(|c| match c {
                Predicate::Compare { attr, .. } => rel.schema().contains(attr),
                _ => false,
            })
            .collect();
        if applicable.is_empty() {
            new_relations.push(rel.clone());
        } else {
            let combined = Predicate::And(applicable.into_iter().cloned().collect());
            let compiled = combined.compile(rel.schema()).map_err(CoreError::Storage)?;
            let filtered = rel.filter(format!("{}__σ", rel.name()), &compiled);
            new_relations.push(Arc::new(filtered));
        }
    }

    // Every conjunct must have found at least one home.
    for c in &conjuncts {
        if let Predicate::Compare { attr, .. } = c {
            if !spec.relations().iter().any(|r| r.schema().contains(attr)) {
                return Err(CoreError::Invalid(format!(
                    "predicate attribute `{attr}` not in any relation of `{}`",
                    spec.name()
                )));
            }
        }
    }

    JoinSpec::with_edges(name, new_relations, spec.edges().to_vec()).map_err(CoreError::Join)
}

/// Whether a predicate is push-down-eligible: a conjunction of
/// single-attribute comparisons (`Or` / `Not` must fall back to
/// reject-during-sampling). The planner consults this when choosing a
/// [`PredicateMode`] for a declarative query.
pub fn can_push_down(predicate: &Predicate) -> bool {
    flatten_conjuncts(predicate).is_ok()
}

/// Flattens a predicate into single-attribute conjuncts; fails on `Or` /
/// `Not` (those cannot be pushed down independently).
fn flatten_conjuncts(p: &Predicate) -> Result<Vec<&Predicate>, CoreError> {
    let mut out = Vec::new();
    fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) -> Result<(), CoreError> {
        match p {
            Predicate::True => Ok(()),
            Predicate::Compare { .. } => {
                out.push(p);
                Ok(())
            }
            Predicate::And(children) => {
                for c in children {
                    walk(c, out)?;
                }
                Ok(())
            }
            Predicate::Or(_) | Predicate::Not(_) => Err(CoreError::Invalid(
                "only conjunctions of comparisons can be pushed down; use \
                 FilteredSampler for general predicates"
                    .into(),
            )),
        }
    }
    walk(p, &mut out)?;
    Ok(out)
}

/// Reject-during-sampling wrapper: uniform over `σ_pred(J)`.
pub struct FilteredSampler {
    inner: Box<dyn JoinSampler>,
    predicate: CompiledPredicate,
}

impl FilteredSampler {
    /// Wraps a sampler; the predicate is compiled against the join's
    /// output schema.
    pub fn new(inner: Box<dyn JoinSampler>, predicate: &Predicate) -> Result<Self, CoreError> {
        let compiled = predicate
            .compile(inner.spec().output_schema())
            .map_err(CoreError::Storage)?;
        Ok(Self {
            inner,
            predicate: compiled,
        })
    }
}

impl JoinSampler for FilteredSampler {
    fn spec(&self) -> &JoinSpec {
        self.inner.spec()
    }

    fn sample_rows(&self, rng: &mut SujRng, draw: &mut suj_join::RowDraw) -> bool {
        // Predicate evaluation needs values, so inner-accepted attempts
        // materialize here; inner-rejected attempts stay allocation-free.
        self.inner.sample_rows(rng, draw) && self.predicate.eval(&self.inner.materialize(draw))
    }

    fn materialize(&self, draw: &suj_join::RowDraw) -> suj_storage::Tuple {
        self.inner.materialize(draw)
    }

    fn sample(&self, rng: &mut SujRng) -> SampleOutcome {
        // Override the provided method to materialize once, not twice.
        match self.inner.sample(rng) {
            SampleOutcome::Accepted(t) if self.predicate.eval(&t) => SampleOutcome::Accepted(t),
            _ => SampleOutcome::Rejected,
        }
    }

    fn sample_until_accepted(
        &self,
        rng: &mut SujRng,
        max_tries: u64,
    ) -> (Option<suj_storage::Tuple>, u64) {
        // Loop over the overridden `sample` so each inner-accepted
        // attempt materializes exactly once (the default loops
        // `sample_rows`, which would evaluate-then-rematerialize).
        for attempt in 1..=max_tries {
            if let SampleOutcome::Accepted(t) = self.sample(rng) {
                return (Some(t), attempt);
            }
        }
        (None, max_tries)
    }

    fn sample_batch(
        &self,
        n: usize,
        max_tries: u64,
        rng: &mut SujRng,
        out: &mut Vec<suj_storage::Tuple>,
    ) -> u64 {
        out.reserve(n);
        let mut attempts = 0u64;
        let mut accepted = 0usize;
        while accepted < n && attempts < max_tries {
            attempts += 1;
            if let SampleOutcome::Accepted(t) = self.sample(rng) {
                out.push(t);
                accepted += 1;
            }
        }
        attempts
    }

    fn join_size_hint(&self) -> f64 {
        // The unfiltered hint remains a valid upper bound.
        self.inner.join_size_hint()
    }

    // `size_info` deliberately stays the trait default: the predicate
    // shrinks the result, so the inner sampler's exact size is only an
    // upper bound here.

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// Reject-during-sampling over a whole union: wraps any
/// [`UnionSampler`] and yields only tuples satisfying the predicate,
/// making the output uniform over `σ_pred(J_1 ∪ … ∪ J_n)`.
///
/// Retraction events from the inner sampler are re-indexed into the
/// filtered emission sequence; retractions of tuples the predicate had
/// already rejected are swallowed.
pub struct PredicateSampler {
    inner: Box<dyn UnionSampler>,
    predicate: CompiledPredicate,
    /// Inner emission index → outer (filtered) emission index, for
    /// translating retractions. Entries are dropped once retracted.
    index_map: FxHashMap<u64, u64>,
    report: RunReport,
    rejected_predicate: u64,
    emitted: u64,
}

impl PredicateSampler {
    /// Wraps a built union sampler; the predicate is compiled against
    /// the workload's canonical output schema.
    pub fn new(inner: Box<dyn UnionSampler>, predicate: &Predicate) -> Result<Self, CoreError> {
        let compiled = predicate
            .compile(inner.workload().canonical_schema())
            .map_err(CoreError::Storage)?;
        let report = inner.report().clone();
        Ok(Self {
            inner,
            predicate: compiled,
            index_map: FxHashMap::default(),
            report,
            rejected_predicate: 0,
            emitted: 0,
        })
    }

    /// Samples rejected by the predicate so far.
    pub fn predicate_rejections(&self) -> u64 {
        self.rejected_predicate
    }

    fn sync_report(&mut self) {
        // The builder stamps the resolved configuration on the outer
        // report, and the batch `sample` loop records draw latencies on
        // the outer report too; don't let a sync from the (unstamped,
        // latency-free) inner sampler erase either.
        let config = self.report.config.take();
        let latency = std::mem::take(&mut self.report.draw_latency);
        self.report.copy_from(self.inner.report());
        if self.report.config.is_none() {
            self.report.config = config;
        }
        if self.report.draw_latency.is_empty() {
            self.report.draw_latency = latency;
        }
        self.report.rejected_predicate = self.rejected_predicate;
    }
}

impl UnionSampler for PredicateSampler {
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError> {
        // Inner→outer index translation is only needed when the inner
        // sampler can actually retract; skipping it keeps wrappers over
        // never-retracting samplers O(1) in memory.
        let track_indices = self.inner.may_retract();
        loop {
            match self.inner.draw(rng) {
                Ok(Draw::Tuple(inner_idx, t)) => {
                    if self.predicate.eval(&t) {
                        let outer_idx = self.emitted;
                        if track_indices {
                            self.index_map.insert(inner_idx, outer_idx);
                        }
                        self.emitted += 1;
                        self.sync_report();
                        return Ok(Draw::Tuple(outer_idx, t));
                    }
                    self.rejected_predicate += 1;
                }
                Ok(Draw::Retract(inner_idx)) => {
                    if let Some(outer) = self.index_map.remove(&inner_idx) {
                        self.sync_report();
                        return Ok(Draw::Retract(outer));
                    }
                    // The retracted tuple never passed the filter.
                }
                Err(e) => {
                    self.sync_report();
                    return Err(e);
                }
            }
        }
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn workload(&self) -> &Arc<UnionWorkload> {
        self.inner.workload()
    }

    fn may_retract(&self) -> bool {
        self.inner.may_retract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_join::exec::execute;
    use suj_join::weights::build_sampler;
    use suj_join::WeightKind;
    use suj_storage::{CompareOp, FxHashSet, Schema, Tuple, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn spec() -> JoinSpec {
        JoinSpec::chain(
            "j",
            vec![
                rel(
                    "r",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 20]],
                ),
                rel(
                    "s",
                    &["b", "c"],
                    vec![vec![10, 100], vec![10, 101], vec![20, 200]],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_down_equals_filter_after_join() {
        let spec = spec();
        let pred = Predicate::And(vec![
            Predicate::cmp("a", CompareOp::Le, Value::int(3)),
            Predicate::cmp("c", CompareOp::Lt, Value::int(200)),
        ]);
        let pushed = push_down(&spec, &pred, "j_σ").unwrap();
        let pushed_set = execute(&pushed).distinct_set();

        // Ground truth: filter the full join output.
        let full = execute(&spec);
        let compiled = pred.compile(spec.output_schema()).unwrap();
        let expected: FxHashSet<Tuple> = full
            .tuples()
            .iter()
            .filter(|t| compiled.eval(t))
            .cloned()
            .collect();
        assert_eq!(pushed_set, expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn push_down_on_join_attribute_filters_both_sides() {
        let spec = spec();
        let pred = Predicate::eq("b", Value::int(10));
        let pushed = push_down(&spec, &pred, "j_b").unwrap();
        // Both relations lost their b=20 rows.
        assert_eq!(pushed.relation(0).len(), 2);
        assert_eq!(pushed.relation(1).len(), 2);
    }

    #[test]
    fn push_down_rejects_disjunctions() {
        let spec = spec();
        let pred = Predicate::Or(vec![Predicate::eq("a", Value::int(1))]);
        assert!(push_down(&spec, &pred, "bad").is_err());
    }

    #[test]
    fn push_down_rejects_unknown_attribute() {
        let spec = spec();
        let pred = Predicate::eq("zz", Value::int(1));
        assert!(push_down(&spec, &pred, "bad").is_err());
    }

    #[test]
    fn filtered_sampler_uniform_over_selection() {
        let spec = Arc::new(spec());
        let pred = Predicate::cmp("c", CompareOp::Le, Value::int(101));
        let inner = build_sampler(spec.clone(), WeightKind::Exact).unwrap();
        let sampler = FilteredSampler::new(inner, &pred).unwrap();

        let compiled = pred.compile(spec.output_schema()).unwrap();
        let expected: Vec<Tuple> = execute(&spec)
            .tuples()
            .iter()
            .filter(|t| compiled.eval(t))
            .cloned()
            .collect();
        assert!(expected.len() >= 2);

        let mut rng = SujRng::seed_from_u64(3);
        let mut counts: suj_storage::FxHashMap<Tuple, u64> = Default::default();
        let mut accepted = 0;
        while accepted < 2_000 * expected.len() {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                assert!(compiled.eval(&t));
                *counts.entry(t).or_insert(0) += 1;
                accepted += 1;
            }
        }
        let observed: Vec<u64> = expected
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(outcome.p_value > 0.001, "p = {}", outcome.p_value);
    }

    #[test]
    fn true_predicate_is_identity() {
        let spec = spec();
        let pushed = push_down(&spec, &Predicate::True, "same").unwrap();
        assert_eq!(
            execute(&pushed).distinct_set(),
            execute(&spec).distinct_set()
        );
    }
}
