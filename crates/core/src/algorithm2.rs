//! Algorithm 2: online union sampling with sample reuse and
//! backtracking (§7).
//!
//! The histogram-based method has near-zero setup cost but loose
//! parameters; the random-walk method is accurate but needs warm-up.
//! Algorithm 2 takes both: parameters initialize from histograms,
//! random walks refine them *during* sampling, and two devices keep the
//! output uniform while parameters move:
//!
//! * **Sample reuse** — warm-up walk tuples `(t, p(t))` sit in per-join
//!   pools; when join `J_j` is selected and its pool is non-empty, a
//!   pooled tuple is drawn uniformly and accepted with rate
//!   `R = l / (p(t)·|J_j|)` (emitting `⌊R⌋ + Bernoulli(frac R)` copies,
//!   removed from the pool on acceptance), which makes the reused tuple
//!   uniform over `J_j`. Pool exhaustion falls back to regular
//!   walk-based sampling.
//! * **Backtracking with parameter update** — every `φ` recorded walk
//!   probabilities, sizes/overlaps/covers are re-estimated; previously
//!   returned tuples are thinned with probability
//!   `min(1, q_new(t)/q_old(t))` where `q(t)` is the tuple's emission
//!   probability under a parameter set, so the retained sample follows
//!   the refined distribution. Updates stop once the tracked confidence
//!   level reaches `γ`.
//!
//! The sampler implements [`UnionSampler`]: warm-up runs lazily on the
//! first [`draw`](UnionSampler::draw) (it consumes the caller's RNG),
//! and both uniformity devices surface as
//! [`Draw::Retract`](crate::sampler::Draw) events, which is what makes
//! Algorithm 2's inherently incremental refinement expressible through
//! the streaming API.

use crate::cover::{Cover, CoverStrategy};
use crate::error::CoreError;
use crate::hist_estimator::{DegreeMode, HistogramEstimator};
use crate::overlap::OverlapMap;
use crate::report::RunReport;
use crate::sampler::{Draw, UnionSampler};
use crate::walk_estimator::{walk_warmup, WalkEstimate, WalkEstimatorConfig};
use crate::workload::UnionWorkload;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;
use suj_join::WanderJoin;
use suj_stats::{Categorical, SujRng};
use suj_storage::{FxHashMap, Tuple};

/// Configuration of the online union sampler.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Parameter-update cadence: update after every `phi` recorded walk
    /// probabilities (the paper's φ).
    pub phi: u64,
    /// Target confidence level γ; updates/backtracking stop once the
    /// worst relative CI half-width at this level drops below
    /// `ci_threshold`.
    pub gamma: f64,
    /// Relative CI half-width threshold paired with `gamma`.
    pub ci_threshold: f64,
    /// Warm-up walk configuration (set `max_walks_per_join = 0` for the
    /// fully online, no-warm-up variant).
    pub warmup: WalkEstimatorConfig,
    /// Enable sample reuse (Fig. 6 toggles this).
    pub reuse: bool,
    /// Upper bound on copies emitted per reuse acceptance. §7's rate
    /// `R = l/(p(t)·|J_j|)` legitimately exceeds 1 and the paper emits
    /// `R` instances; on small joins (`p·|J| ≈ 1`) that means
    /// pool-sized bursts of one tuple, and a pathological walk
    /// probability can make `R` astronomically large. The batch
    /// formulation implicitly capped bursts at the remaining demand
    /// `n`; the incremental API has no `n`, so the default caps at
    /// 4096 copies to bound queue memory. Raise it (up to `u64::MAX`
    /// for the paper's literal semantics) or lower it to observe the
    /// pool-exhaustion slope.
    pub reuse_burst_cap: u64,
    /// Enable backtracking (ablation toggle).
    pub backtrack: bool,
    /// Cover-retry cap per join selection.
    pub max_cover_retries: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            phi: 256,
            gamma: 0.9,
            ci_threshold: 0.05,
            warmup: WalkEstimatorConfig::default(),
            reuse: true,
            reuse_burst_cap: 4096,
            backtrack: true,
            max_cover_retries: 100_000,
        }
    }
}

/// The online union sampler (Algorithm 2).
pub struct OnlineUnionSampler {
    workload: Arc<UnionWorkload>,
    config: OnlineConfig,
    strategy: CoverStrategy,
    report: RunReport,
    emitted: u64,
    pending: VecDeque<Draw>,
    /// Estimation and record state, built lazily on the first draw
    /// (warm-up consumes the caller's RNG, exactly like the batch
    /// semantics where warm-up ran at the head of `sample`).
    state: Option<OnlineState>,
}

/// Per-run online state: estimators, cover, and the record-policy
/// emission history with retraction support.
struct OnlineState {
    fallback_sizes: Vec<f64>,
    hist_map: OverlapMap,
    est: WalkEstimate,
    cover: Cover,
    selection: Categorical,
    wanders: Vec<WanderJoin>,
    walks_at_last_update: u64,
    converged: bool,
    /// Live (unretracted) emissions still subject to backtracking:
    /// emission index → (tuple, owning join, emission probability at
    /// acceptance). Ordered so the thinning pass consumes RNG in
    /// emission order, exactly like the batch formulation's sequential
    /// scan. Cleared — and no longer fed — once estimates converge,
    /// bounding memory by the number of live pre-convergence emissions
    /// instead of the full stream length.
    live_emissions: BTreeMap<u64, (Tuple, usize, f64)>,
    /// Live emission indices per tuple value (revision purges).
    positions: FxHashMap<Tuple, Vec<u64>>,
    orig: FxHashMap<Tuple, usize>,
    /// In-progress join selection `(join, cover retries so far)`,
    /// persisted so a draw returning a retraction event can resume the
    /// selection loop exactly where it left off.
    cur: Option<(usize, u64)>,
    /// Reusable row-id walk scratch: failed walks allocate nothing.
    draw: suj_join::RowDraw,
}

/// Emission probability of a tuple owned by join `j` under the current
/// parameters.
fn q_emit(cover: &Cover, est: &WalkEstimate, j: usize) -> f64 {
    let sel = cover.sizes()[j] / cover.union_size().max(f64::MIN_POSITIVE);
    sel / est.join_sizes[j].max(1.0)
}

fn init_state(
    workload: &Arc<UnionWorkload>,
    config: &OnlineConfig,
    strategy: CoverStrategy,
    rng: &mut SujRng,
) -> Result<OnlineState, CoreError> {
    let n_joins = workload.n_joins();
    let hist = HistogramEstimator::with_olken(workload, DegreeMode::Max)?;
    let hist_map = hist.overlap_map()?;
    let fallback_sizes: Vec<f64> = (0..n_joins).map(|j| hist_map.join_size(j)).collect();

    let mut est = if config.warmup.max_walks_per_join > 0 {
        walk_warmup(workload, &config.warmup, rng)?
    } else {
        WalkEstimate::empty(n_joins)
    };
    est.refresh_sizes(&fallback_sizes);
    let map = est.overlap_map_with_fallback(&hist_map)?;
    let cover = Cover::build(&map, strategy);
    let selection = cover.selection().ok_or_else(|| {
        CoreError::Invalid("union size estimate is zero; nothing to sample".into())
    })?;
    let wanders: Vec<WanderJoin> = workload
        .joins()
        .iter()
        .map(|j| WanderJoin::new(j.clone()))
        .collect::<Result<_, _>>()
        .map_err(CoreError::Join)?;
    let walks_at_last_update = est.total_walks();
    let converged = est.worst_relative_half_width(config.gamma) <= config.ci_threshold;
    Ok(OnlineState {
        fallback_sizes,
        hist_map,
        est,
        cover,
        selection,
        wanders,
        walks_at_last_update,
        converged,
        live_emissions: BTreeMap::new(),
        positions: FxHashMap::default(),
        orig: FxHashMap::default(),
        cur: None,
        draw: suj_join::RowDraw::new(),
    })
}

impl OnlineUnionSampler {
    /// Builds the sampler.
    pub fn new(
        workload: Arc<UnionWorkload>,
        config: OnlineConfig,
        strategy: CoverStrategy,
    ) -> Self {
        let n_joins = workload.n_joins();
        Self {
            workload,
            config,
            strategy,
            report: RunReport::new(n_joins),
            emitted: 0,
            pending: VecDeque::new(),
            state: None,
        }
    }
}

impl UnionSampler for OnlineUnionSampler {
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError> {
        if let Some(event) = self.pending.pop_front() {
            return Ok(event);
        }
        if self.state.is_none() {
            // ---- Warm-up: histogram initialization + optional walks. ----
            let warmup_start = Instant::now();
            let st = init_state(&self.workload, &self.config, self.strategy, rng)?;
            self.report.warmup_time += warmup_start.elapsed();
            self.state = Some(st);
        }
        let Self {
            workload,
            config,
            strategy,
            report,
            emitted,
            pending,
            state,
        } = self;
        let st = state.as_mut().expect("initialized above");

        loop {
            if st.cur.is_none() {
                let j = st.selection.draw(rng);
                report.join_draws[j] += 1;
                st.cur = Some((j, 0));
            }

            // Sample one tuple uniform over the cover region J'_j
            // (cover rejections retry within the join).
            loop {
                let (j, retries) = st.cur.expect("set above");
                if retries >= config.max_cover_retries {
                    st.cur = None;
                    break; // reselect a join
                }
                st.cur = Some((j, retries + 1));

                // --- Obtain a uniform tuple from J_j (reuse or walk). ---
                let mut obtained: Option<(Tuple, u64)> = None; // (tuple, copies)
                if config.reuse && !st.est.pools[j].is_empty() {
                    let reuse_start = Instant::now();
                    let idx = rng.index(st.est.pools[j].len());
                    let l = st.est.pools[j].len() as f64;
                    let (t, p) = st.est.pools[j][idx].clone();
                    let rate = l / (p * st.est.join_sizes[j].max(1.0));
                    // §7 allows R ≥ 1 (multiple instances per round).
                    let copies = (rate.floor() as u64 + u64::from(rng.bernoulli(rate.fract())))
                        .min(config.reuse_burst_cap);
                    if copies == 0 {
                        report.reuse_rejected += 1;
                        report.reuse_time += reuse_start.elapsed();
                        // Fall through to a regular sample (line 9).
                    } else {
                        st.est.pools[j].swap_remove(idx);
                        report.reuse_accepted += 1;
                        report.reuse_copies += copies;
                        report.reuse_time += reuse_start.elapsed();
                        obtained = Some((t, copies));
                    }
                }
                if obtained.is_none() {
                    let start = Instant::now();
                    // Row-id walk: a failed walk touches no tuple values
                    // and allocates nothing; successful walks
                    // materialize once for the estimator's membership
                    // masks.
                    match st.wanders[j].walk_rows(rng, &mut st.draw) {
                        Some(probability) => {
                            let tuple = st.wanders[j].materialize(&st.draw);
                            let canonical =
                                st.est
                                    .record_success(workload, j, &tuple, probability, false);
                            // Uniformization: accept with (1/p)/B.
                            let accept =
                                (1.0 / probability) / st.wanders[j].bound().max(f64::MIN_POSITIVE);
                            if rng.bernoulli(accept) {
                                obtained = Some((canonical, 1));
                                report.accepted_time += start.elapsed();
                            } else {
                                report.rejected_join += 1;
                                report.rejected_time += start.elapsed();
                            }
                        }
                        None => {
                            st.est.record_failure(j);
                            report.rejected_join += 1;
                            report.rejected_time += start.elapsed();
                        }
                    }
                }

                // --- Cover / record logic (lines 11–17). ---
                if let Some((t, copies)) = obtained {
                    let accept = match st.orig.get(&t).copied() {
                        Some(i) if i == j => true,
                        Some(i) if st.cover.precedes(i, j) => false,
                        Some(_) => {
                            // Revision: ownership moves to the earlier
                            // join j; retract existing live copies.
                            st.orig.insert(t.clone(), j);
                            if let Some(ps) = st.positions.get_mut(&t) {
                                for &p in ps.iter() {
                                    st.live_emissions.remove(&p);
                                    pending.push_back(Draw::Retract(p));
                                    report.revision_removed += 1;
                                }
                                ps.clear();
                            }
                            report.revised += 1;
                            true
                        }
                        None => {
                            st.orig.insert(t.clone(), j);
                            true
                        }
                    };
                    if accept {
                        let q = q_emit(&st.cover, &st.est, j);
                        for _ in 0..copies {
                            let idx = *emitted;
                            st.positions.entry(t.clone()).or_default().push(idx);
                            // Post-convergence emissions can never be
                            // backtracked; keep the tracked set small.
                            if !st.converged && config.backtrack {
                                st.live_emissions.insert(idx, (t.clone(), j, q));
                            }
                            pending.push_back(Draw::Tuple(idx, t.clone()));
                            *emitted += 1;
                            report.accepted += 1;
                        }
                        st.cur = None;
                        return Ok(pending.pop_front().expect("copies >= 1"));
                    } else {
                        report.rejected_cover += 1;
                    }
                }

                // --- Parameter update + backtracking (lines 18–20). ---
                if !st.converged
                    && st.est.total_walks().saturating_sub(st.walks_at_last_update) >= config.phi
                {
                    let update_start = Instant::now();
                    st.walks_at_last_update = st.est.total_walks();
                    st.est.refresh_sizes(&st.fallback_sizes);
                    let map = st.est.overlap_map_with_fallback(&st.hist_map)?;
                    st.cover = Cover::build(&map, *strategy);
                    if let Some(sel) = st.cover.selection() {
                        st.selection = sel;
                    }
                    if config.backtrack {
                        // Thin live emissions in emission order (same
                        // RNG consumption as a sequential scan of the
                        // full history).
                        let mut dropped: Vec<u64> = Vec::new();
                        for (&pos, entry) in st.live_emissions.iter_mut() {
                            let q_new = q_emit(&st.cover, &st.est, entry.1);
                            let keep = (q_new / entry.2.max(f64::MIN_POSITIVE)).min(1.0);
                            if !rng.bernoulli(keep) {
                                report.backtrack_dropped += 1;
                                if let Some(ps) = st.positions.get_mut(&entry.0) {
                                    ps.retain(|&p| p != pos);
                                }
                                pending.push_back(Draw::Retract(pos));
                                dropped.push(pos);
                            } else {
                                entry.2 = entry.2.min(q_new);
                            }
                        }
                        for pos in dropped {
                            st.live_emissions.remove(&pos);
                        }
                    }
                    report.update_rounds += 1;
                    st.converged =
                        st.est.worst_relative_half_width(config.gamma) <= config.ci_threshold;
                    if st.converged {
                        // Terminal: updates can never fire again, so no
                        // emission can ever be backtracked again.
                        st.live_emissions.clear();
                    }
                    report.update_time += update_start.elapsed();
                    if let Some(event) = pending.pop_front() {
                        // `cur` persists: the selection loop resumes on
                        // the next draw, exactly where batch-mode
                        // Algorithm 2 would continue.
                        return Ok(event);
                    }
                }
            }
        }
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn workload(&self) -> &Arc<UnionWorkload> {
        &self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn workload() -> Arc<UnionWorkload> {
        let shared_r: Vec<Vec<i64>> = (0..8).map(|i| vec![i, i % 3]).collect();
        let shared_s: Vec<Vec<i64>> = (0..3).map(|b| vec![b, 100 + b]).collect();
        let mut r1 = shared_r.clone();
        r1.push(vec![50, 0]);
        let mut r2 = shared_r;
        r2.push(vec![60, 1]);
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r1", &["a", "b"], r1),
                rel("s1", &["b", "c"], shared_s.clone()),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![rel("r2", &["a", "b"], r2), rel("s2", &["b", "c"], shared_s)],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    fn config_fast() -> OnlineConfig {
        OnlineConfig {
            phi: 128,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 400,
                min_walks_per_join: 100,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn produces_requested_count_of_members() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler = OnlineUnionSampler::new(w, config_fast(), CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(11);
        let (samples, report) = sampler.sample(300, &mut rng).unwrap();
        assert_eq!(samples.len(), 300);
        for t in &samples {
            assert!(exact.union_set.contains(t), "non-member {t}");
        }
        assert!(report.accepted >= 300);
    }

    #[test]
    fn reuse_pool_is_consumed() {
        let w = workload();
        let mut sampler = OnlineUnionSampler::new(w, config_fast(), CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(12);
        let (_, report) = sampler.sample(200, &mut rng).unwrap();
        assert!(
            report.reuse_accepted > 0,
            "warm-up pools must serve some samples"
        );
    }

    #[test]
    fn no_reuse_variant_walks_more() {
        let w = workload();
        let mut rng_a = SujRng::seed_from_u64(13);
        let mut rng_b = SujRng::seed_from_u64(13);
        let mut with_reuse =
            OnlineUnionSampler::new(w.clone(), config_fast(), CoverStrategy::AsGiven);
        let mut without_reuse = OnlineUnionSampler::new(
            w,
            OnlineConfig {
                reuse: false,
                ..config_fast()
            },
            CoverStrategy::AsGiven,
        );
        let (_, ra) = with_reuse.sample(200, &mut rng_a).unwrap();
        let (_, rb) = without_reuse.sample(200, &mut rng_b).unwrap();
        assert_eq!(rb.reuse_accepted, 0);
        assert!(
            ra.reuse_accepted > 0 && ra.rejected_join <= rb.rejected_join,
            "reuse should cut regular-phase rejections: {} vs {}",
            ra.rejected_join,
            rb.rejected_join
        );
    }

    #[test]
    fn fully_online_no_warmup_works() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let cfg = OnlineConfig {
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(14);
        let (samples, report) = sampler.sample(150, &mut rng).unwrap();
        assert_eq!(samples.len(), 150);
        for t in &samples {
            assert!(exact.union_set.contains(t));
        }
        // Online estimation must have kicked in.
        assert!(report.update_rounds > 0 || report.accepted > 0);
    }

    #[test]
    fn approximate_uniformity_of_online_sampler() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        // Reuse emits copies in bursts (`R = l/(p·|J|)` is far above 1 on
        // joins this small — the paper's regime has |J| ≫ pool size), so
        // the chi-square independence assumption only holds for the
        // regular phase; test uniformity with reuse off. Uniformity is
        // only as accurate as the estimated |J'_j|/|U| ratios (§9.1
        // measures exactly this), so drive the warm-up to ~1% error.
        let cfg = OnlineConfig {
            reuse: false,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 40_000,
                min_walks_per_join: 8_000,
                rel_threshold: 0.01,
                ..Default::default()
            },
            ..config_fast()
        };
        let mut sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(15);
        let n = 1_500 * exact.union_size();
        let (samples, _) = sampler.sample(n, &mut rng).unwrap();
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for t in &samples {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        let observed: Vec<u64> = exact
            .union_set
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        // Online estimation wobbles early; the paper's guarantee is
        // asymptotic. Accept a loose significance floor.
        assert!(
            outcome.p_value > 1e-6,
            "grossly non-uniform: chi2={} p={}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn backtracking_can_drop_samples() {
        let w = workload();
        // Aggressive cadence + no warm-up so estimates move a lot.
        let cfg = OnlineConfig {
            phi: 32,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 0,
                ..Default::default()
            },
            ci_threshold: 0.001, // keep updating for the whole run
            ..Default::default()
        };
        let mut sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(16);
        let (samples, report) = sampler.sample(400, &mut rng).unwrap();
        assert_eq!(samples.len(), 400);
        assert!(report.update_rounds > 0, "updates must fire");
        // Backtracking may or may not drop depending on drift; the
        // counter must at least be consistent.
        assert!(report.backtrack_dropped <= report.accepted);
    }

    #[test]
    fn incremental_draws_report_consistent_events() {
        // Consume the online sampler event by event: retractions always
        // reference live prior emissions, and the cumulative report
        // matches the event stream.
        let w = workload();
        let cfg = OnlineConfig {
            phi: 32,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 0,
                ..Default::default()
            },
            ci_threshold: 0.001,
            ..Default::default()
        };
        let mut sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(17);
        let mut live = vec![];
        let mut retractions = 0u64;
        for _ in 0..2_000 {
            match sampler.draw(&mut rng).unwrap() {
                Draw::Tuple(_, t) => live.push(Some(t)),
                Draw::Retract(idx) => {
                    let slot = live
                        .get_mut(idx as usize)
                        .expect("retraction of a future emission");
                    assert!(slot.is_some(), "double retraction of one emission");
                    *slot = None;
                    retractions += 1;
                }
            }
        }
        assert_eq!(live.len() as u64, sampler.emitted());
        assert_eq!(
            retractions,
            sampler.report().backtrack_dropped + sampler.report().revision_removed
        );
    }
}
