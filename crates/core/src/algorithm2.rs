//! Algorithm 2: online union sampling with sample reuse and
//! backtracking (§7).
//!
//! The histogram-based method has near-zero setup cost but loose
//! parameters; the random-walk method is accurate but needs warm-up.
//! Algorithm 2 takes both: parameters initialize from histograms,
//! random walks refine them *during* sampling, and two devices keep the
//! output uniform while parameters move:
//!
//! * **Sample reuse** — warm-up walk tuples `(t, p(t))` sit in per-join
//!   pools; when join `J_j` is selected and its pool is non-empty, a
//!   pooled tuple is drawn uniformly and accepted with rate
//!   `R = l / (p(t)·|J_j|)` (emitting `⌊R⌋ + Bernoulli(frac R)` copies,
//!   removed from the pool on acceptance), which makes the reused tuple
//!   uniform over `J_j`. Pool exhaustion falls back to regular
//!   walk-based sampling.
//! * **Backtracking with parameter update** — every `φ` recorded walk
//!   probabilities, sizes/overlaps/covers are re-estimated; previously
//!   returned tuples are thinned with probability
//!   `min(1, q_new(t)/q_old(t))` where `q(t)` is the tuple's emission
//!   probability under a parameter set, so the retained sample follows
//!   the refined distribution. Updates stop once the tracked confidence
//!   level reaches `γ`.

use crate::cover::{Cover, CoverStrategy};
use crate::error::CoreError;
use crate::hist_estimator::{DegreeMode, HistogramEstimator};
use crate::report::RunReport;
use crate::walk_estimator::{walk_warmup, WalkEstimate, WalkEstimatorConfig};
use crate::workload::UnionWorkload;
use std::sync::Arc;
use std::time::Instant;
use suj_join::{WalkOutcome, WanderJoin};
use suj_stats::SujRng;
use suj_storage::{FxHashMap, Tuple};

/// Configuration of the online union sampler.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Parameter-update cadence: update after every `phi` recorded walk
    /// probabilities (the paper's φ).
    pub phi: u64,
    /// Target confidence level γ; updates/backtracking stop once the
    /// worst relative CI half-width at this level drops below
    /// `ci_threshold`.
    pub gamma: f64,
    /// Relative CI half-width threshold paired with `gamma`.
    pub ci_threshold: f64,
    /// Warm-up walk configuration (set `max_walks_per_join = 0` for the
    /// fully online, no-warm-up variant).
    pub warmup: WalkEstimatorConfig,
    /// Enable sample reuse (Fig. 6 toggles this).
    pub reuse: bool,
    /// Upper bound on copies emitted per reuse acceptance. §7's rate
    /// `R = l/(p(t)·|J_j|)` legitimately exceeds 1 and the paper emits
    /// `R` instances; on small joins (`p·|J| ≈ 1`) that means
    /// pool-sized bursts of one tuple. The default keeps the paper's
    /// semantics (`u64::MAX`); harnesses that want to observe the
    /// pool-exhaustion slope bound it.
    pub reuse_burst_cap: u64,
    /// Enable backtracking (ablation toggle).
    pub backtrack: bool,
    /// Cover-retry cap per join selection.
    pub max_cover_retries: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            phi: 256,
            gamma: 0.9,
            ci_threshold: 0.05,
            warmup: WalkEstimatorConfig::default(),
            reuse: true,
            reuse_burst_cap: u64::MAX,
            backtrack: true,
            max_cover_retries: 100_000,
        }
    }
}

/// The online union sampler (Algorithm 2).
pub struct OnlineUnionSampler {
    workload: Arc<UnionWorkload>,
    config: OnlineConfig,
    strategy: CoverStrategy,
}

/// Mutable per-run state: the record-policy result set with revision
/// support plus per-tuple emission metadata for backtracking.
struct RunState {
    result: Vec<Tuple>,
    removed: Vec<bool>,
    /// (owning join, emission probability at acceptance time) per entry.
    meta: Vec<(usize, f64)>,
    positions: FxHashMap<Tuple, Vec<usize>>,
    orig: FxHashMap<Tuple, usize>,
    live: usize,
}

impl RunState {
    fn new(n: usize) -> Self {
        Self {
            result: Vec::with_capacity(n),
            removed: Vec::new(),
            meta: Vec::new(),
            positions: FxHashMap::default(),
            orig: FxHashMap::default(),
            live: 0,
        }
    }

    fn push(&mut self, t: Tuple, join: usize, q: f64) {
        self.positions
            .entry(t.clone())
            .or_default()
            .push(self.result.len());
        self.result.push(t);
        self.removed.push(false);
        self.meta.push((join, q));
        self.live += 1;
    }

    fn purge(&mut self, t: &Tuple) -> u64 {
        let mut purged = 0;
        if let Some(ps) = self.positions.get_mut(t) {
            for &p in ps.iter() {
                if !self.removed[p] {
                    self.removed[p] = true;
                    self.live -= 1;
                    purged += 1;
                }
            }
            ps.clear();
        }
        purged
    }

    fn finish(self) -> Vec<Tuple> {
        self.result
            .into_iter()
            .zip(self.removed)
            .filter(|(_, dead)| !dead)
            .map(|(t, _)| t)
            .collect()
    }
}

impl OnlineUnionSampler {
    /// Builds the sampler.
    pub fn new(
        workload: Arc<UnionWorkload>,
        config: OnlineConfig,
        strategy: CoverStrategy,
    ) -> Self {
        Self {
            workload,
            config,
            strategy,
        }
    }

    /// Draws `n` samples from the set union, estimating parameters
    /// online.
    pub fn sample(&self, n: usize, rng: &mut SujRng) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        let w = &self.workload;
        let n_joins = w.n_joins();
        let mut report = RunReport::new(n_joins);

        // ---- Warm-up: histogram initialization + optional walks. ----
        let warmup_start = Instant::now();
        let hist = HistogramEstimator::with_olken(w, DegreeMode::Max)?;
        let hist_map = hist.overlap_map()?;
        let fallback_sizes: Vec<f64> = (0..n_joins).map(|j| hist_map.join_size(j)).collect();

        let mut est = if self.config.warmup.max_walks_per_join > 0 {
            walk_warmup(w, &self.config.warmup, rng)?
        } else {
            WalkEstimate::empty(n_joins)
        };
        est.refresh_sizes(&fallback_sizes);
        let mut map = est.overlap_map_with_fallback(&hist_map)?;
        let mut cover = Cover::build(&map, self.strategy);
        let mut selection = cover.selection().ok_or_else(|| {
            CoreError::Invalid("union size estimate is zero; nothing to sample".into())
        })?;
        let wanders: Vec<WanderJoin> = w
            .joins()
            .iter()
            .map(|j| WanderJoin::new(j.clone()))
            .collect::<Result<_, _>>()
            .map_err(CoreError::Join)?;
        report.warmup_time = warmup_start.elapsed();

        // Emission probability of a tuple owned by join j under the
        // current parameters.
        let q_emit = |cover: &Cover, est: &WalkEstimate, j: usize| -> f64 {
            let sel = cover.sizes()[j] / cover.union_size().max(f64::MIN_POSITIVE);
            sel / est.join_sizes[j].max(1.0)
        };

        let mut state = RunState::new(n);
        let mut walks_at_last_update = est.total_walks();
        let mut converged = est.worst_relative_half_width(self.config.gamma)
            <= self.config.ci_threshold;

        while state.live < n {
            let j = selection.draw(rng);
            report.join_draws[j] += 1;

            // Sample one tuple uniform over the cover region J'_j
            // (cover rejections retry within the join).
            let mut retries = 0u64;
            'selection: while retries < self.config.max_cover_retries {
                retries += 1;

                // --- Obtain a uniform tuple from J_j (reuse or walk). ---
                let mut obtained: Option<(Tuple, u64)> = None; // (tuple, copies)
                if self.config.reuse && !est.pools[j].is_empty() {
                    let reuse_start = Instant::now();
                    let idx = rng.index(est.pools[j].len());
                    let l = est.pools[j].len() as f64;
                    let (t, p) = est.pools[j][idx].clone();
                    let rate = l / (p * est.join_sizes[j].max(1.0));
                    // §7 allows R ≥ 1 (multiple instances per round). We
                    // cap at the remaining demand: emitting past N would
                    // be discarded anyway.
                    let copies = (rate.floor() as u64
                        + u64::from(rng.bernoulli(rate.fract())))
                    .min(self.config.reuse_burst_cap)
                    .min((n - state.live) as u64);
                    if copies == 0 {
                        report.reuse_rejected += 1;
                        report.reuse_time += reuse_start.elapsed();
                        // Fall through to a regular sample (line 9).
                    } else {
                        est.pools[j].swap_remove(idx);
                        report.reuse_accepted += 1;
                        report.reuse_copies += copies;
                        report.reuse_time += reuse_start.elapsed();
                        obtained = Some((t, copies));
                    }
                }
                if obtained.is_none() {
                    let start = Instant::now();
                    match wanders[j].walk(rng) {
                        WalkOutcome::Success { tuple, probability } => {
                            let canonical =
                                est.record_success(w, j, &tuple, probability, false);
                            // Uniformization: accept with (1/p)/B.
                            let accept =
                                (1.0 / probability) / wanders[j].bound().max(f64::MIN_POSITIVE);
                            if rng.bernoulli(accept) {
                                obtained = Some((canonical, 1));
                                report.accepted_time += start.elapsed();
                            } else {
                                report.rejected_join += 1;
                                report.rejected_time += start.elapsed();
                            }
                        }
                        WalkOutcome::Failure => {
                            est.record_failure(j);
                            report.rejected_join += 1;
                            report.rejected_time += start.elapsed();
                        }
                    }
                }

                // --- Cover / record logic (lines 11–17). ---
                if let Some((t, copies)) = obtained {
                    let accept = match state.orig.get(&t).copied() {
                        Some(i) if i == j => true,
                        Some(i) if cover.precedes(i, j) => false,
                        Some(_) => {
                            // Revision: ownership moves to the earlier
                            // join j; purge existing copies.
                            state.orig.insert(t.clone(), j);
                            report.revision_removed += state.purge(&t);
                            report.revised += 1;
                            true
                        }
                        None => {
                            state.orig.insert(t.clone(), j);
                            true
                        }
                    };
                    if accept {
                        let q = q_emit(&cover, &est, j);
                        for _ in 0..copies {
                            state.push(t.clone(), j, q);
                            report.accepted += 1;
                        }
                        break 'selection;
                    } else {
                        report.rejected_cover += 1;
                    }
                }

                // --- Parameter update + backtracking (lines 18–20). ---
                if !converged
                    && est.total_walks().saturating_sub(walks_at_last_update) >= self.config.phi
                {
                    let update_start = Instant::now();
                    walks_at_last_update = est.total_walks();
                    est.refresh_sizes(&fallback_sizes);
                    map = est.overlap_map_with_fallback(&hist_map)?;
                    cover = Cover::build(&map, self.strategy);
                    if let Some(sel) = cover.selection() {
                        selection = sel;
                    }
                    if self.config.backtrack {
                        for pos in 0..state.result.len() {
                            if state.removed[pos] {
                                continue;
                            }
                            let (owner, q_old) = state.meta[pos];
                            let q_new = q_emit(&cover, &est, owner);
                            let keep = (q_new / q_old.max(f64::MIN_POSITIVE)).min(1.0);
                            if !rng.bernoulli(keep) {
                                state.removed[pos] = true;
                                state.live -= 1;
                                report.backtrack_dropped += 1;
                                if let Some(ps) = state.positions.get_mut(&state.result[pos]) {
                                    ps.retain(|&p| p != pos);
                                }
                            } else {
                                state.meta[pos].1 = q_old.min(q_new);
                            }
                        }
                    }
                    report.update_rounds += 1;
                    converged = est.worst_relative_half_width(self.config.gamma)
                        <= self.config.ci_threshold;
                    report.update_time += update_start.elapsed();
                }
            }
        }

        Ok((state.finish(), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn workload() -> Arc<UnionWorkload> {
        let shared_r: Vec<Vec<i64>> = (0..8).map(|i| vec![i, i % 3]).collect();
        let shared_s: Vec<Vec<i64>> = (0..3).map(|b| vec![b, 100 + b]).collect();
        let mut r1 = shared_r.clone();
        r1.push(vec![50, 0]);
        let mut r2 = shared_r;
        r2.push(vec![60, 1]);
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r1", &["a", "b"], r1),
                rel("s1", &["b", "c"], shared_s.clone()),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![rel("r2", &["a", "b"], r2), rel("s2", &["b", "c"], shared_s)],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    fn config_fast() -> OnlineConfig {
        OnlineConfig {
            phi: 128,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 400,
                min_walks_per_join: 100,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn produces_requested_count_of_members() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let sampler = OnlineUnionSampler::new(w, config_fast(), CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(11);
        let (samples, report) = sampler.sample(300, &mut rng).unwrap();
        assert_eq!(samples.len(), 300);
        for t in &samples {
            assert!(exact.union_set.contains(t), "non-member {t}");
        }
        assert!(report.accepted >= 300);
    }

    #[test]
    fn reuse_pool_is_consumed() {
        let w = workload();
        let sampler = OnlineUnionSampler::new(w, config_fast(), CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(12);
        let (_, report) = sampler.sample(200, &mut rng).unwrap();
        assert!(
            report.reuse_accepted > 0,
            "warm-up pools must serve some samples"
        );
    }

    #[test]
    fn no_reuse_variant_walks_more() {
        let w = workload();
        let mut rng_a = SujRng::seed_from_u64(13);
        let mut rng_b = SujRng::seed_from_u64(13);
        let with_reuse = OnlineUnionSampler::new(w.clone(), config_fast(), CoverStrategy::AsGiven);
        let without_reuse = OnlineUnionSampler::new(
            w,
            OnlineConfig {
                reuse: false,
                ..config_fast()
            },
            CoverStrategy::AsGiven,
        );
        let (_, ra) = with_reuse.sample(200, &mut rng_a).unwrap();
        let (_, rb) = without_reuse.sample(200, &mut rng_b).unwrap();
        assert_eq!(rb.reuse_accepted, 0);
        assert!(
            ra.reuse_accepted > 0 && ra.rejected_join <= rb.rejected_join,
            "reuse should cut regular-phase rejections: {} vs {}",
            ra.rejected_join,
            rb.rejected_join
        );
    }

    #[test]
    fn fully_online_no_warmup_works() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let cfg = OnlineConfig {
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(14);
        let (samples, report) = sampler.sample(150, &mut rng).unwrap();
        assert_eq!(samples.len(), 150);
        for t in &samples {
            assert!(exact.union_set.contains(t));
        }
        // Online estimation must have kicked in.
        assert!(report.update_rounds > 0 || report.accepted > 0);
    }

    #[test]
    fn approximate_uniformity_of_online_sampler() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        // Reuse emits copies in bursts (`R = l/(p·|J|)` is far above 1 on
        // joins this small — the paper's regime has |J| ≫ pool size), so
        // the chi-square independence assumption only holds for the
        // regular phase; test uniformity with reuse off. Uniformity is
        // only as accurate as the estimated |J'_j|/|U| ratios (§9.1
        // measures exactly this), so drive the warm-up to ~1% error.
        let cfg = OnlineConfig {
            reuse: false,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 40_000,
                min_walks_per_join: 8_000,
                rel_threshold: 0.01,
                ..Default::default()
            },
            ..config_fast()
        };
        let sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(15);
        let n = 1_500 * exact.union_size();
        let (samples, _) = sampler.sample(n, &mut rng).unwrap();
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for t in &samples {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        let observed: Vec<u64> = exact
            .union_set
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        // Online estimation wobbles early; the paper's guarantee is
        // asymptotic. Accept a loose significance floor.
        assert!(
            outcome.p_value > 1e-6,
            "grossly non-uniform: chi2={} p={}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn backtracking_can_drop_samples() {
        let w = workload();
        // Aggressive cadence + no warm-up so estimates move a lot.
        let cfg = OnlineConfig {
            phi: 32,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 0,
                ..Default::default()
            },
            ci_threshold: 0.001, // keep updating for the whole run
            ..Default::default()
        };
        let sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(16);
        let (samples, report) = sampler.sample(400, &mut rng).unwrap();
        assert_eq!(samples.len(), 400);
        assert!(report.update_rounds > 0, "updates must fire");
        // Backtracking may or may not drop depending on drift; the
        // counter must at least be consistent.
        assert!(report.backtrack_dropped <= report.accepted);
    }
}
