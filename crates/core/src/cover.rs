//! Covers over join orderings (§3.1).
//!
//! A cover `C = {J'_1, …, J'_n}` is an ordering over the joins such that
//! `J'_i = {t ∈ J_i | t ∉ ∪_{j<i} J'_j}` — each tuple of the union is
//! assigned to exactly one join, the earliest (in cover order) that
//! contains it. Join selection then draws `J_i` with probability
//! `|J'_i| / |U|` (non-Bernoulli selection), eliminating the union
//! trick's duplicate-region waste.

use crate::overlap::OverlapMap;
use suj_stats::Categorical;

/// How the cover orders the joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverStrategy {
    /// Workload order (the paper's default).
    AsGiven,
    /// Largest estimated join first (claims overlaps early, giving later
    /// joins small residuals).
    DescendingSize,
    /// Smallest estimated join first (ablation counterpart).
    AscendingSize,
}

/// A materialized cover: order, per-join cover sizes, and the induced
/// selection distribution.
#[derive(Debug, Clone)]
pub struct Cover {
    order: Vec<usize>,
    /// `rank[j]` = position of join `j` in the cover order.
    rank: Vec<usize>,
    /// `sizes[j]` = `|J'_j|` (indexed by join).
    sizes: Vec<f64>,
    union_size: f64,
}

impl Cover {
    /// Builds a cover from (estimated or exact) overlaps.
    pub fn build(overlap: &OverlapMap, strategy: CoverStrategy) -> Cover {
        let n = overlap.n();
        let mut order: Vec<usize> = (0..n).collect();
        match strategy {
            CoverStrategy::AsGiven => {}
            CoverStrategy::DescendingSize => {
                order.sort_by(|&a, &b| overlap.join_size(b).total_cmp(&overlap.join_size(a)));
            }
            CoverStrategy::AscendingSize => {
                order.sort_by(|&a, &b| overlap.join_size(a).total_cmp(&overlap.join_size(b)));
            }
        }
        let sizes = overlap.cover_sizes(&order);
        let union_size: f64 = sizes.iter().sum();
        let mut rank = vec![0usize; n];
        for (pos, &j) in order.iter().enumerate() {
            rank[j] = pos;
        }
        Cover {
            order,
            rank,
            sizes,
            union_size,
        }
    }

    /// The cover order (join indices, earliest first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Position of join `j` in the cover order.
    pub fn rank(&self, j: usize) -> usize {
        self.rank[j]
    }

    /// Whether join `a` precedes join `b` in the cover.
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        self.rank[a] < self.rank[b]
    }

    /// `|J'_j|` indexed by join.
    pub fn sizes(&self) -> &[f64] {
        &self.sizes
    }

    /// `Σ_j |J'_j|` — equals `|U|` when overlaps are exact; with
    /// estimates this is the normalization constant for selection.
    pub fn union_size(&self) -> f64 {
        self.union_size
    }

    /// The join-selection distribution `P(J_j) = |J'_j| / Σ |J'_i|`.
    /// `None` when every cover size is zero (empty union).
    pub fn selection(&self) -> Option<Categorical> {
        Categorical::new(&self.sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;

    fn map_three() -> OverlapMap {
        // J0 = {1..10}, J1 = {6..13}, J2 = {9..20} (see overlap.rs tests).
        let j0: Vec<i32> = (1..=10).collect();
        let j1: Vec<i32> = (6..=13).collect();
        let j2: Vec<i32> = (9..=20).collect();
        let sets = [j0, j1, j2];
        OverlapMap::from_fn(3, |idx| {
            let first = &sets[idx[0]];
            first
                .iter()
                .filter(|x| idx.iter().all(|&j| sets[j].contains(x)))
                .count() as f64
        })
        .unwrap()
    }

    #[test]
    fn as_given_cover() {
        let cover = Cover::build(&map_three(), CoverStrategy::AsGiven);
        assert_eq!(cover.order(), &[0, 1, 2]);
        assert_eq!(cover.sizes(), &[10.0, 3.0, 7.0]);
        assert!((cover.union_size() - 20.0).abs() < 1e-9);
        assert!(cover.precedes(0, 2));
        assert!(!cover.precedes(2, 0));
        assert_eq!(cover.rank(1), 1);
    }

    #[test]
    fn descending_puts_biggest_first() {
        let cover = Cover::build(&map_three(), CoverStrategy::DescendingSize);
        // |J2| = 12 > |J0| = 10 > |J1| = 8.
        assert_eq!(cover.order(), &[2, 0, 1]);
        // Still partitions the union.
        assert!((cover.union_size() - 20.0).abs() < 1e-9);
        // J1 is fully covered by J0 ∪ J2 → its cover size is 0.
        assert_eq!(cover.sizes()[1], 0.0);
    }

    #[test]
    fn ascending_puts_smallest_first() {
        let cover = Cover::build(&map_three(), CoverStrategy::AscendingSize);
        assert_eq!(cover.order(), &[1, 0, 2]);
        assert!((cover.union_size() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn selection_distribution_matches_sizes() {
        let cover = Cover::build(&map_three(), CoverStrategy::AsGiven);
        let cat = cover.selection().unwrap();
        assert!((cat.probability(0) - 0.5).abs() < 1e-12);
        assert!((cat.probability(1) - 0.15).abs() < 1e-12);
        assert!((cat.probability(2) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn empty_union_has_no_selection() {
        let m = OverlapMap::new(1, vec![0.0, 0.0]).unwrap();
        let cover = Cover::build(&m, CoverStrategy::AsGiven);
        assert!(cover.selection().is_none());
        let _ = CoreError::NoJoins; // silence unused-import lint paths
    }
}
