//! One validated place to assemble a sampling pipeline.
//!
//! The framework has three orthogonal axes — *parameter estimation*
//! (exact / histogram / random walk), *sampling strategy* (Algorithm 1
//! rejection, Algorithm 2 online, Bernoulli union trick, disjoint
//! union), and *predicate handling* (push-down / reject) — that every
//! caller previously hand-wired. [`SamplerBuilder`] owns the whole
//! pipeline:
//!
//! ```
//! use std::sync::Arc;
//! use suj_core::prelude::*;
//! use suj_stats::SujRng;
//! use suj_storage::{Relation, Schema, Tuple, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let rel = |name: &str, attrs: [&str; 2], rows: &[(i64, i64)]| {
//! #     let tuples = rows.iter()
//! #         .map(|&(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
//! #         .collect();
//! #     Arc::new(Relation::new(name, Schema::new(attrs).unwrap(), tuples).unwrap())
//! # };
//! # let j1 = suj_join::JoinSpec::chain("j1", vec![
//! #     rel("r1", ["a", "b"], &[(1, 10), (2, 20)]),
//! #     rel("s1", ["b", "c"], &[(10, 100), (20, 200)]),
//! # ])?;
//! # let j2 = suj_join::JoinSpec::chain("j2", vec![
//! #     rel("r2", ["a", "b"], &[(1, 10), (3, 30)]),
//! #     rel("s2", ["b", "c"], &[(10, 100), (30, 300)]),
//! # ])?;
//! # let workload = Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)])?);
//! let mut sampler = SamplerBuilder::for_workload(workload)
//!     .estimator(Estimator::Exact)
//!     .strategy(Strategy::Rejection)
//!     .cover_policy(CoverPolicy::MembershipOracle)
//!     .build()?;
//! let mut rng = SujRng::seed_from_u64(7);
//! let (samples, _report) = sampler.sample(5, &mut rng)?;
//! assert_eq!(samples.len(), 5);
//! # Ok(())
//! # }
//! ```
//!
//! `build()` returns a `Box<dyn UnionSampler + Send>`, so every
//! strategy is interchangeable behind one type: batch via
//! [`UnionSampler::sample`], incremental via
//! [`SampleStream`](crate::stream::SampleStream). For serving, split
//! the pipeline with [`SamplerBuilder::freeze`]: the frozen
//! [`PreparedSampler`] pays estimation and per-join precomputation
//! once, is `Send + Sync`, and mints an independent `Send` handle per
//! thread via [`PreparedSampler::instantiate`].

use crate::algorithm1::{CoverPolicy, SetUnionSampler, UnionSamplerConfig};
use crate::algorithm2::{OnlineConfig, OnlineUnionSampler};
use crate::bernoulli::{BernoulliUnionSampler, DesignationPolicy};
use crate::cover::CoverStrategy;
use crate::disjoint::DisjointUnionSampler;
use crate::error::CoreError;
use crate::exact::full_join_union;
use crate::hist_estimator::{DegreeMode, HistogramEstimator};
use crate::overlap::OverlapMap;
use crate::planner::{cover_label, Planner};
use crate::predicate_mode::{push_down, PredicateMode, PredicateSampler};
use crate::query::UnionSemantics;
use crate::report::PlanSummary;
use crate::sampler::UnionSampler;
use crate::walk_estimator::{walk_warmup, WalkEstimatorConfig};
use crate::workload::UnionWorkload;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use suj_join::weights::build_sampler;
use suj_join::{JoinSampler, JoinSpec, WeightKind};
use suj_stats::SujRng;
use suj_storage::Predicate;

/// Histogram-estimator options for the builder.
#[derive(Debug, Clone, Copy)]
pub struct HistogramOptions {
    /// Degree statistic driving the Theorem 4 multipliers.
    pub degree_mode: DegreeMode,
    /// §8.1.2 alternating-score hyper-parameter (0.0 = plain scores).
    pub zero_weight: f64,
    /// Use exact (EW) join sizes as hints instead of extended-Olken
    /// bounds (§9's hist+EW vs hist+EO configurations).
    pub exact_size_hints: bool,
}

impl Default for HistogramOptions {
    fn default() -> Self {
        Self {
            degree_mode: DegreeMode::Max,
            zero_weight: 0.0,
            exact_size_hints: false,
        }
    }
}

/// How union/overlap parameters are obtained before sampling.
#[derive(Debug, Clone, Copy)]
pub enum Estimator {
    /// Ground truth via `FullJoinUnion` (§9 baseline — expensive but
    /// exact; the right choice for tests and small data).
    Exact,
    /// Histogram-based bounds (§5, §8): statistics only, no data
    /// access — the decentralized / data-market configuration.
    Histogram(HistogramOptions),
    /// Random-walk warm-up estimation (§6): centralized configuration.
    /// Walks consume the builder's estimation RNG (see
    /// [`SamplerBuilder::estimation_seed`]).
    Walk(WalkEstimatorConfig),
}

/// Which sampling algorithm runs over the estimated parameters.
#[derive(Debug, Clone, Copy)]
pub enum Strategy {
    /// Algorithm 1: non-Bernoulli cover selection with rejection and
    /// revision. Tune with [`SamplerBuilder::cover_policy`],
    /// [`SamplerBuilder::cover_strategy`], and
    /// [`SamplerBuilder::weights`].
    Rejection,
    /// Algorithm 2: online estimation while sampling, with sample reuse
    /// and backtracking. Pairs with [`Estimator::Walk`] (which then
    /// configures the warm-up) or no explicit estimator.
    Online(OnlineConfig),
    /// The §3 Bernoulli union trick with the given designation policy.
    Bernoulli(DesignationPolicy),
    /// Disjoint-union sampling (Definition 1).
    Disjoint,
    /// Let the [`Planner`] pick the strategy
    /// (and any estimator / weights / cover left unset) from cheap
    /// workload statistics. The planned configuration — including the
    /// rule that fired — is recorded in the sampler's
    /// [`RunReport::config`](crate::report::RunReport::config).
    Auto,
}

impl fmt::Display for Estimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Estimator::Exact => write!(f, "exact"),
            Estimator::Histogram(opts) if opts.exact_size_hints => write!(f, "histogram(EW)"),
            Estimator::Histogram(_) => write!(f, "histogram(EO)"),
            Estimator::Walk(_) => write!(f, "walk"),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Rejection => write!(f, "rejection"),
            Strategy::Online(_) => write!(f, "online"),
            Strategy::Bernoulli(DesignationPolicy::Oracle) => write!(f, "bernoulli(oracle)"),
            Strategy::Bernoulli(DesignationPolicy::Record) => write!(f, "bernoulli(record)"),
            Strategy::Disjoint => write!(f, "disjoint"),
            Strategy::Auto => write!(f, "auto"),
        }
    }
}

/// Fluent assembly of a union sampling pipeline.
///
/// Defaults: histogram estimation with extended-Olken hints,
/// [`Strategy::Rejection`] with the paper's record policy, exact
/// weights, workload cover order, no predicate.
pub struct SamplerBuilder {
    workload: Arc<UnionWorkload>,
    estimator: Option<Estimator>,
    strategy: Strategy,
    weights: Option<WeightKind>,
    cover_policy: Option<CoverPolicy>,
    cover_strategy: Option<CoverStrategy>,
    predicate: Option<(Predicate, PredicateMode)>,
    estimation_seed: u64,
    max_join_tries: Option<u64>,
    max_cover_retries: Option<u64>,
    /// An overlap map the planner already computed for this workload
    /// and estimator; consumed by `build()` instead of re-estimating.
    /// Only set by [`apply_plan`](Self::apply_plan), and discarded
    /// when a push-down predicate rewrites the workload.
    prebuilt_overlap: Option<OverlapMap>,
    /// Exact-weight per-join samplers the planner already built for
    /// this workload (count tables + alias arenas); consumed by
    /// `freeze()` instead of building the same structures again. Like
    /// `prebuilt_overlap`, discarded when a push-down predicate
    /// rewrites the workload. Only set by
    /// [`apply_plan`](Self::apply_plan).
    prebuilt_samplers: Option<Vec<Arc<dyn JoinSampler>>>,
    /// Parameters restored from a snapshot; consumed by `freeze()`
    /// instead of estimating. Unlike `prebuilt_overlap`, restored
    /// parameters were frozen *after* any push-down rewrite, so they
    /// survive it. Only set by [`with_restored`](Self::with_restored).
    restored: Option<FrozenParams>,
    /// Per-join Exact-Weight artifacts restored from a snapshot;
    /// `freeze()` revives them through
    /// [`ExactWeightSampler::from_artifacts`](suj_join::ExactWeightSampler::from_artifacts)
    /// instead of rebuilding count tables and alias arenas. Frozen
    /// after any push-down rewrite, so they survive it. Only set by
    /// [`with_restored_artifacts`](Self::with_restored_artifacts).
    restored_artifacts: Option<Vec<suj_join::EwArtifacts>>,
}

/// The estimated parameters a freeze committed to, retained on the
/// [`PreparedSampler`] so a snapshot can persist them and a restore can
/// rebuild the identical pipeline without paying estimation again.
#[derive(Debug, Clone)]
pub(crate) enum FrozenParams {
    /// The strategy estimates per handle (online): nothing to persist.
    None,
    /// The overlap map the freeze consumed (rejection, Bernoulli, and
    /// disjoint sampling under map-producing estimators).
    Map(OverlapMap),
    /// Exact per-join sizes (disjoint sampling under exact estimation,
    /// which never builds a full map).
    Sizes(Vec<f64>),
}

impl SamplerBuilder {
    /// Starts a pipeline over a validated workload.
    pub fn for_workload(workload: Arc<UnionWorkload>) -> Self {
        Self {
            workload,
            estimator: None,
            strategy: Strategy::Rejection,
            weights: None,
            cover_policy: None,
            cover_strategy: None,
            predicate: None,
            estimation_seed: 0x5eed,
            max_join_tries: None,
            max_cover_retries: None,
            prebuilt_overlap: None,
            prebuilt_samplers: None,
            restored: None,
            restored_artifacts: None,
        }
    }

    /// Builds the workload from join specs first, then starts the
    /// pipeline.
    pub fn for_joins(joins: Vec<Arc<JoinSpec>>) -> Result<Self, CoreError> {
        Ok(Self::for_workload(Arc::new(UnionWorkload::new(joins)?)))
    }

    /// Selects the parameter estimator (default:
    /// `Estimator::Histogram(HistogramOptions::default())`).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Sets the estimator only if no explicit choice was made — how
    /// [`Plan::apply`](crate::planner::Plan::apply) fills planned
    /// values without overriding the caller.
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn estimator_if_unset(mut self, estimator: Estimator) -> Self {
        self.estimator.get_or_insert(estimator);
        self
    }

    /// Selects the sampling strategy (default: `Strategy::Rejection`).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Weight instantiation for the per-join subroutine (§3.2; default
    /// exact weights).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn weights(mut self, weights: WeightKind) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Sets weights only if no explicit choice was made (see
    /// [`estimator_if_unset`](Self::estimator_if_unset)).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn weights_if_unset(mut self, weights: WeightKind) -> Self {
        self.weights.get_or_insert(weights);
        self
    }

    /// Cover ownership policy for [`Strategy::Rejection`] (default: the
    /// paper's record policy).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn cover_policy(mut self, policy: CoverPolicy) -> Self {
        self.cover_policy = Some(policy);
        self
    }

    /// Cover ordering strategy (default: workload order).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn cover_strategy(mut self, strategy: CoverStrategy) -> Self {
        self.cover_strategy = Some(strategy);
        self
    }

    /// Sets the cover ordering only if no explicit choice was made
    /// (see [`estimator_if_unset`](Self::estimator_if_unset)).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn cover_strategy_if_unset(mut self, strategy: CoverStrategy) -> Self {
        self.cover_strategy.get_or_insert(strategy);
        self
    }

    /// Applies a selection predicate in the given mode.
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn predicate(mut self, predicate: Predicate, mode: PredicateMode) -> Self {
        self.predicate = Some((predicate, mode));
        self
    }

    /// Seed of the RNG used by build-time estimation
    /// ([`Estimator::Walk`]); sampling itself always uses the RNG the
    /// caller passes to `draw` / `sample`. Doubles as the root of the
    /// per-handle stream derivation of
    /// [`PreparedQuery::sample`](crate::catalog::PreparedQuery::sample).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn estimation_seed(mut self, seed: u64) -> Self {
        self.estimation_seed = seed;
        self
    }

    /// Attempt budget inside the join-sampling subroutine per draw
    /// (defaults to the strategy config's own default when unset).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn max_join_tries(mut self, tries: u64) -> Self {
        self.max_join_tries = Some(tries);
        self
    }

    /// Cover-rejection retry cap per join selection (defaults to the
    /// strategy config's own default when unset).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub fn max_cover_retries(mut self, retries: u64) -> Self {
        self.max_cover_retries = Some(retries);
        self
    }

    /// Fills every knob a [`Plan`](crate::planner::Plan) names that the
    /// caller left unset (explicit choices always win). When the plan
    /// keeps the probe's histogram estimator, the probed overlap map is
    /// attached so `build()` skips the second estimation pass.
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub(crate) fn apply_plan(mut self, plan: &crate::planner::Plan) -> Self {
        self.strategy = plan.strategy;
        if let Some(est) = plan.estimator {
            if self.estimator.is_none() {
                self.estimator = Some(est);
                if let (Estimator::Histogram(opts), Some(map)) = (est, &plan.stats.probed_map) {
                    // The probe ran `with_olken` under `DegreeMode::Max`
                    // with default options; only that exact
                    // configuration may reuse its map.
                    if !opts.exact_size_hints
                        && opts.zero_weight == 0.0
                        && opts.degree_mode == DegreeMode::Max
                    {
                        self.prebuilt_overlap = Some(map.clone());
                    }
                }
            }
        }
        if let Some(w) = plan.weights {
            self = self.weights_if_unset(w);
        }
        if let Some(cs) = plan.cover_strategy {
            self = self.cover_strategy_if_unset(cs);
        }
        // The planner's exact-size refinement already built the
        // exact-weight samplers (count tables + alias arenas); reuse
        // them unless the caller pinned a different weight kind.
        if let Some(probed) = &plan.stats.probed_samplers {
            if self.weights == Some(WeightKind::Exact) {
                self.prebuilt_samplers = Some(probed.0.clone());
            }
        }
        self
    }

    /// Supplies snapshot-restored parameters: `freeze()` consumes them
    /// instead of estimating (the restore path's "no re-estimation"
    /// guarantee — [`PreparedSampler::estimation_passes`] stays 0).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub(crate) fn with_restored(mut self, params: FrozenParams) -> Self {
        self.restored = Some(params);
        self
    }

    /// Supplies snapshot-restored Exact-Weight artifacts: `freeze()`
    /// revives the per-join samplers from them (validated by
    /// `from_artifacts`) instead of recomputing count tables and
    /// rebuilding alias arenas — restored replicas serve without any
    /// alias build (observable via [`suj_join::alias_builds`]).
    #[must_use = "builder methods return the updated builder; dropping it discards the configuration"]
    pub(crate) fn with_restored_artifacts(mut self, artifacts: Vec<suj_join::EwArtifacts>) -> Self {
        self.restored_artifacts = Some(artifacts);
        self
    }

    /// Estimates an overlap map with the configured estimator.
    fn estimate(
        workload: &Arc<UnionWorkload>,
        estimator: &Estimator,
        seed: u64,
    ) -> Result<OverlapMap, CoreError> {
        match estimator {
            Estimator::Exact => Ok(full_join_union(workload)?.overlap),
            Estimator::Histogram(opts) => {
                let est = if opts.exact_size_hints {
                    let sizes = workload.exact_join_sizes()?;
                    HistogramEstimator::new(workload, opts.degree_mode, sizes, opts.zero_weight)?
                } else if opts.zero_weight != 0.0 {
                    let hints = workload
                        .joins()
                        .iter()
                        .map(|j| suj_join::bounds::olken_bound(j))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(CoreError::Join)?;
                    HistogramEstimator::new(workload, opts.degree_mode, hints, opts.zero_weight)?
                } else {
                    HistogramEstimator::with_olken(workload, opts.degree_mode)?
                };
                est.overlap_map()
            }
            Estimator::Walk(cfg) => {
                let mut rng = SujRng::seed_from_u64(seed);
                walk_warmup(workload, cfg, &mut rng)?.overlap_map()
            }
        }
    }

    /// Rejects a knob that the selected strategy cannot honor.
    fn reject_knob(set: bool, knob: &str, strategy: &str) -> Result<(), CoreError> {
        if set {
            Err(CoreError::Invalid(format!(
                "`{knob}` does not apply to {strategy}; remove the call or pick a \
                 strategy that uses it"
            )))
        } else {
            Ok(())
        }
    }

    /// The [`PlanSummary`] of the resolved (non-`Auto`) configuration.
    fn config_summary(&self, rule: Option<String>) -> PlanSummary {
        let estimator = match self.strategy {
            Strategy::Online(_) => "online".to_string(),
            _ => self
                .estimator
                .unwrap_or(Estimator::Histogram(HistogramOptions::default()))
                .to_string(),
        };
        let weights = match self.strategy {
            Strategy::Online(_) => None,
            _ => Some(crate::planner::weights_label(
                self.weights.unwrap_or(WeightKind::Exact),
            )),
        };
        let cover = match self.strategy {
            Strategy::Rejection | Strategy::Online(_) => Some(cover_label(
                self.cover_strategy.unwrap_or(CoverStrategy::AsGiven),
            )),
            _ => None,
        };
        let predicate = self.predicate.as_ref().map(|(_, m)| {
            match m {
                PredicateMode::PushDown => "push-down",
                PredicateMode::Reject => "reject",
            }
            .to_string()
        });
        PlanSummary {
            strategy: self.strategy.to_string(),
            estimator,
            weights,
            cover,
            predicate,
            // The builder records no size provenance of its own; the
            // planner (freeze_auto / engine) stamps it afterwards.
            sizing: None,
            rule,
        }
    }

    /// [`Strategy::Auto`]: plan the configuration, fill every knob the
    /// caller left unset, and freeze through the ordinary explicit path
    /// (so an `Auto` build is seed-for-seed identical to the explicit
    /// configuration the planner selected).
    fn freeze_auto(self) -> Result<PreparedSampler, CoreError> {
        let plan = Planner::default().plan(&self.workload, UnionSemantics::Set);
        let rule = plan.rule.name();
        let planned = plan.strategy.to_string();
        let sizing = plan.summary().sizing;
        let mut prepared = self.apply_plan(&plan).freeze().map_err(|e| match e {
            // A knob the caller pinned can be incompatible with the
            // strategy the planner picked for *this data*; say so
            // instead of blaming a strategy the caller never chose.
            CoreError::Invalid(msg) => CoreError::Invalid(format!(
                "Strategy::Auto planned `{planned}` (rule {rule}): {msg}"
            )),
            other => other,
        })?;
        prepared.summary.rule = Some(rule.to_string());
        prepared.summary.sizing = sizing;
        Ok(prepared)
    }

    /// Uses a planner-probed overlap map when present (identical by
    /// construction to what [`estimate`](Self::estimate) would
    /// recompute for the same estimator), else estimates and counts the
    /// pass in `passes` (the estimations-paid counter served workloads
    /// assert on).
    fn resolve_map(
        prebuilt: Option<OverlapMap>,
        workload: &Arc<UnionWorkload>,
        estimator: &Estimator,
        seed: u64,
        passes: &mut u64,
    ) -> Result<OverlapMap, CoreError> {
        match prebuilt {
            Some(map) => Ok(map),
            None => {
                *passes += 1;
                Self::estimate(workload, estimator, seed)
            }
        }
    }

    /// Per-join samplers built once and shared by every handle the
    /// frozen pipeline mints ([`JoinSampler`] samples through `&self`).
    fn shared_samplers(
        workload: &Arc<UnionWorkload>,
        weights: WeightKind,
    ) -> Result<Vec<Arc<dyn JoinSampler>>, CoreError> {
        workload
            .joins()
            .iter()
            .map(|j| build_sampler(j.clone(), weights).map(Arc::from))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::Join)
    }

    /// Shared samplers for a freeze arm, cheapest source first:
    /// snapshot-restored samplers (revived from persisted artifacts, no
    /// alias build), then the planner's probed samplers (identical by
    /// construction to what [`shared_samplers`](Self::shared_samplers)
    /// would rebuild), else a fresh build. Both prebuilt sources hold
    /// exact-weight samplers, so any other weight kind always builds
    /// fresh.
    fn resolve_samplers(
        restored: &mut Option<Vec<Arc<dyn JoinSampler>>>,
        prebuilt: &mut Option<Vec<Arc<dyn JoinSampler>>>,
        workload: &Arc<UnionWorkload>,
        weights: WeightKind,
    ) -> Result<Vec<Arc<dyn JoinSampler>>, CoreError> {
        if weights == WeightKind::Exact {
            if let Some(s) = restored.take().or_else(|| prebuilt.take()) {
                if s.len() == workload.n_joins() {
                    return Ok(s);
                }
            }
        }
        Self::shared_samplers(workload, weights)
    }

    /// Validates the configuration, pays parameter estimation and
    /// per-join precomputation once, and returns the frozen
    /// [`PreparedSampler`] — a `Send + Sync` artifact that mints any
    /// number of independent sampler handles via
    /// [`instantiate`](PreparedSampler::instantiate).
    pub fn freeze(mut self) -> Result<PreparedSampler, CoreError> {
        if let Strategy::Auto = self.strategy {
            return self.freeze_auto();
        }
        let summary = self.config_summary(None);
        let root_seed = self.estimation_seed;
        let mut estimation_passes = 0u64;

        // A push-down predicate rewrites the workload below, which
        // invalidates any overlap map probed on the original. Restored
        // parameters were frozen *after* that rewrite, so they survive
        // it (the rewrite itself is deterministic).
        let restored = self.restored.take();
        let mut prebuilt = match (&restored, &self.predicate) {
            (Some(FrozenParams::Map(map)), _) => Some(map.clone()),
            (_, Some((_, PredicateMode::PushDown))) => None,
            _ => self.prebuilt_overlap.take(),
        };
        let mut prebuilt_samplers = match &self.predicate {
            // Planner-probed samplers were built on the original
            // workload; a push-down rewrite invalidates them.
            Some((_, PredicateMode::PushDown)) => None,
            _ => self.prebuilt_samplers.take(),
        };
        let restored_sizes = match restored {
            Some(FrozenParams::Sizes(sizes)) => Some(sizes),
            _ => None,
        };
        let restored_artifacts = self.restored_artifacts.take();

        // --- Predicate push-down rewrites the workload first. ---
        let workload = match &self.predicate {
            Some((p, PredicateMode::PushDown)) => {
                let filtered: Vec<Arc<JoinSpec>> = self
                    .workload
                    .joins()
                    .iter()
                    .map(|j| push_down(j, p, &format!("{}__σ", j.name())).map(Arc::new))
                    .collect::<Result<_, _>>()?;
                Arc::new(UnionWorkload::new(filtered)?)
            }
            _ => self.workload.clone(),
        };

        // Revive snapshot-restored Exact-Weight samplers from their
        // persisted artifacts. Artifacts were frozen after any
        // push-down rewrite, so they line up with the (possibly
        // rewritten) workload; `from_artifacts` validates every shape
        // against the spec before serving from them.
        let mut restored_samplers: Option<Vec<Arc<dyn JoinSampler>>> = match restored_artifacts {
            Some(artifacts) => {
                if artifacts.len() != workload.n_joins() {
                    return Err(CoreError::Invalid(format!(
                        "restored EW artifacts cover {} joins but the workload has {}",
                        artifacts.len(),
                        workload.n_joins()
                    )));
                }
                Some(
                    workload
                        .joins()
                        .iter()
                        .cloned()
                        .zip(artifacts)
                        .map(|(spec, art)| {
                            suj_join::ExactWeightSampler::from_artifacts(spec, art)
                                .map(|s| Arc::new(s) as Arc<dyn JoinSampler>)
                        })
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(CoreError::Join)?,
                )
            }
            None => None,
        };

        let (kind, frozen_params) = match self.strategy {
            Strategy::Rejection => {
                let estimator = self
                    .estimator
                    .unwrap_or(Estimator::Histogram(HistogramOptions::default()));
                let map = Self::resolve_map(
                    prebuilt.take(),
                    &workload,
                    &estimator,
                    self.estimation_seed,
                    &mut estimation_passes,
                )?;
                let defaults = UnionSamplerConfig::default();
                let config = UnionSamplerConfig {
                    weights: self.weights.unwrap_or(defaults.weights),
                    policy: self.cover_policy.unwrap_or(defaults.policy),
                    strategy: self.cover_strategy.unwrap_or(defaults.strategy),
                    max_join_tries: self.max_join_tries.unwrap_or(defaults.max_join_tries),
                    max_cover_retries: self.max_cover_retries.unwrap_or(defaults.max_cover_retries),
                };
                let samplers = Self::resolve_samplers(
                    &mut restored_samplers,
                    &mut prebuilt_samplers,
                    &workload,
                    config.weights,
                )?;
                let frozen = FrozenParams::Map(map.clone());
                (
                    PreparedKind::Rejection {
                        samplers,
                        map,
                        config,
                    },
                    frozen,
                )
            }
            Strategy::Online(mut config) => {
                // Algorithm 2 always uses wander-join walks with the
                // record policy; knobs it cannot honor are errors, not
                // silent no-ops.
                Self::reject_knob(self.weights.is_some(), "weights", "Strategy::Online")?;
                Self::reject_knob(
                    self.cover_policy.is_some(),
                    "cover_policy",
                    "Strategy::Online",
                )?;
                Self::reject_knob(
                    self.max_join_tries.is_some(),
                    "max_join_tries",
                    "Strategy::Online",
                )?;
                // An explicit Walk estimator configures its warm-up,
                // anything else is a contradiction worth surfacing.
                match self.estimator {
                    None => {}
                    Some(Estimator::Walk(warmup)) => config.warmup = warmup,
                    Some(_) => {
                        return Err(CoreError::Invalid(
                            "Strategy::Online estimates parameters online; combine it \
                             with Estimator::Walk (warm-up configuration) or no \
                             estimator"
                                .into(),
                        ));
                    }
                }
                // Only an explicit builder-level override touches the
                // caller's OnlineConfig.
                if let Some(retries) = self.max_cover_retries {
                    config.max_cover_retries = retries;
                }
                (
                    PreparedKind::Online {
                        config,
                        cover_strategy: self.cover_strategy.unwrap_or(CoverStrategy::AsGiven),
                    },
                    FrozenParams::None,
                )
            }
            Strategy::Bernoulli(policy) => {
                Self::reject_knob(
                    self.cover_policy.is_some(),
                    "cover_policy",
                    "Strategy::Bernoulli",
                )?;
                Self::reject_knob(
                    self.cover_strategy.is_some(),
                    "cover_strategy",
                    "Strategy::Bernoulli",
                )?;
                Self::reject_knob(
                    self.max_cover_retries.is_some(),
                    "max_cover_retries",
                    "Strategy::Bernoulli",
                )?;
                let estimator = self
                    .estimator
                    .unwrap_or(Estimator::Histogram(HistogramOptions::default()));
                let map = Self::resolve_map(
                    prebuilt.take(),
                    &workload,
                    &estimator,
                    self.estimation_seed,
                    &mut estimation_passes,
                )?;
                let sizes: Vec<f64> = (0..workload.n_joins()).map(|j| map.join_size(j)).collect();
                let samplers = Self::resolve_samplers(
                    &mut restored_samplers,
                    &mut prebuilt_samplers,
                    &workload,
                    self.weights.unwrap_or(WeightKind::Exact),
                )?;
                let union_size = map.union_size();
                (
                    PreparedKind::Bernoulli {
                        samplers,
                        sizes,
                        union_size,
                        policy,
                        max_join_tries: self.max_join_tries,
                    },
                    FrozenParams::Map(map),
                )
            }
            Strategy::Disjoint => {
                Self::reject_knob(
                    self.cover_policy.is_some(),
                    "cover_policy",
                    "Strategy::Disjoint",
                )?;
                Self::reject_knob(
                    self.cover_strategy.is_some(),
                    "cover_strategy",
                    "Strategy::Disjoint",
                )?;
                Self::reject_knob(
                    self.max_join_tries.is_some(),
                    "max_join_tries",
                    "Strategy::Disjoint",
                )?;
                Self::reject_knob(
                    self.max_cover_retries.is_some(),
                    "max_cover_retries",
                    "Strategy::Disjoint",
                )?;
                let samplers = Self::resolve_samplers(
                    &mut restored_samplers,
                    &mut prebuilt_samplers,
                    &workload,
                    self.weights.unwrap_or(WeightKind::Exact),
                )?;
                let (sizes, frozen) = match self
                    .estimator
                    .unwrap_or(Estimator::Histogram(HistogramOptions::default()))
                {
                    Estimator::Exact => {
                        let sizes = match restored_sizes {
                            // Snapshot-restored sizes replace the exact
                            // estimation pass bit-for-bit.
                            Some(sizes) => sizes,
                            None => {
                                estimation_passes += 1;
                                // Exact-weight samplers already hold the
                                // exact sizes in their count-table
                                // roots (identical values to the
                                // separate EW pass they replace).
                                if samplers.iter().all(|s| s.as_exact().is_some()) {
                                    samplers
                                        .iter()
                                        .map(|s| s.as_exact().expect("checked above").exact_size())
                                        .collect()
                                } else {
                                    workload.exact_join_sizes()?
                                }
                            }
                        };
                        (sizes.clone(), FrozenParams::Sizes(sizes))
                    }
                    other => {
                        let map = Self::resolve_map(
                            prebuilt.take(),
                            &workload,
                            &other,
                            self.estimation_seed,
                            &mut estimation_passes,
                        )?;
                        let sizes = (0..workload.n_joins()).map(|j| map.join_size(j)).collect();
                        (sizes, FrozenParams::Map(map))
                    }
                };
                (PreparedKind::Disjoint { samplers, sizes }, frozen)
            }
            Strategy::Auto => unreachable!("Auto is resolved in freeze_auto"),
        };

        // Resident footprint of the frozen pipeline: base relations
        // plus everything the per-join samplers precomputed (hash
        // indexes, count tables, alias arenas).
        let sampler_bytes: u64 = match &kind {
            PreparedKind::Rejection { samplers, .. }
            | PreparedKind::Bernoulli { samplers, .. }
            | PreparedKind::Disjoint { samplers, .. } => {
                samplers.iter().map(|s| s.memory_bytes() as u64).sum()
            }
            PreparedKind::Online { .. } => 0,
        };
        let prepared_bytes = workload.memory_bytes() as u64 + sampler_bytes;
        Ok(PreparedSampler {
            workload,
            kind,
            reject_predicate: match self.predicate {
                Some((p, PredicateMode::Reject)) => Some(p),
                _ => None,
            },
            summary,
            root_seed,
            estimation_passes,
            prepared_bytes,
            frozen_params,
            snapshot_bytes: 0,
            restore_time: Duration::ZERO,
            minted: AtomicU64::new(0),
        })
    }

    /// Validates the configuration and assembles one sampler — the
    /// single-handle convenience over [`freeze`](Self::freeze) +
    /// [`instantiate`](PreparedSampler::instantiate). The returned
    /// trait object is `Send`, so it can be built on one thread and
    /// driven on another.
    pub fn build(self) -> Result<Box<dyn UnionSampler + Send>, CoreError> {
        self.freeze()?.instantiate()
    }
}

/// What a frozen pipeline needs to mint a handle: the estimated
/// parameters plus the shared per-join samplers (everything immutable);
/// per-handle record/report state is created fresh at
/// [`instantiate`](PreparedSampler::instantiate) time.
enum PreparedKind {
    /// Algorithm 1 (rejection + revision).
    Rejection {
        samplers: Vec<Arc<dyn JoinSampler>>,
        map: OverlapMap,
        config: UnionSamplerConfig,
    },
    /// Algorithm 2: estimates online, so each handle owns its own
    /// estimation state (warm-up consumes the handle's RNG).
    Online {
        config: OnlineConfig,
        cover_strategy: CoverStrategy,
    },
    /// The §3 Bernoulli union trick.
    Bernoulli {
        samplers: Vec<Arc<dyn JoinSampler>>,
        sizes: Vec<f64>,
        union_size: f64,
        policy: DesignationPolicy,
        max_join_tries: Option<u64>,
    },
    /// Disjoint-union sampling (Definition 1).
    Disjoint {
        samplers: Vec<Arc<dyn JoinSampler>>,
        sizes: Vec<f64>,
    },
}

/// A frozen, estimation-complete sampling pipeline.
///
/// Produced by [`SamplerBuilder::freeze`]: parameter estimation and the
/// per-join weight precomputation ran exactly once, and the result is
/// immutable — `PreparedSampler` is `Send + Sync`, so one instance
/// (typically inside an
/// [`Arc<PreparedQuery>`](crate::catalog::PreparedQuery)) serves any
/// number of threads. Each [`instantiate`](Self::instantiate) call
/// mints an independent sampler handle over the shared parts: handles
/// start with fresh record/report state, making every handle its own
/// i.i.d. sampling process whose output depends only on the RNG it is
/// driven with — the determinism contract concurrent serving relies
/// on.
pub struct PreparedSampler {
    workload: Arc<UnionWorkload>,
    kind: PreparedKind,
    /// Reject-mode predicate, compiled per handle (push-down
    /// predicates were already folded into `workload` at freeze time).
    reject_predicate: Option<Predicate>,
    summary: PlanSummary,
    root_seed: u64,
    estimation_passes: u64,
    /// Resident bytes of the workload's base relations, stamped into
    /// every minted handle's report.
    prepared_bytes: u64,
    /// The estimated parameters the freeze committed to, retained so
    /// snapshots can persist them (see
    /// [`Engine::save_snapshot`](crate::catalog::Engine::save_snapshot)).
    frozen_params: FrozenParams,
    /// Size of the snapshot this pipeline was restored from (0 when it
    /// was frozen in-process); stamped into every handle's report.
    snapshot_bytes: u64,
    /// Wall time of the snapshot restore that produced this pipeline
    /// (zero when frozen in-process); stamped into every handle's
    /// report for load-vs-prepare comparisons.
    restore_time: Duration,
    minted: AtomicU64,
}

impl PreparedSampler {
    /// Mints an independent sampler handle over the frozen state.
    ///
    /// Cheap by construction: no estimation, no weight precomputation —
    /// only fresh per-handle record/report state (plus, for
    /// [`Strategy::Online`], the lazily-initialized online estimation
    /// state, which by design is per-handle). The handle is `Send` and
    /// exclusively owned; drive it with any RNG — same RNG stream, same
    /// samples, regardless of which thread runs it.
    pub fn instantiate(&self) -> Result<Box<dyn UnionSampler + Send>, CoreError> {
        let base: Box<dyn UnionSampler + Send> = match &self.kind {
            PreparedKind::Rejection {
                samplers,
                map,
                config,
            } => Box::new(SetUnionSampler::with_shared(
                self.workload.clone(),
                map,
                *config,
                samplers.clone(),
            )?),
            PreparedKind::Online {
                config,
                cover_strategy,
            } => Box::new(OnlineUnionSampler::new(
                self.workload.clone(),
                *config,
                *cover_strategy,
            )),
            PreparedKind::Bernoulli {
                samplers,
                sizes,
                union_size,
                policy,
                max_join_tries,
            } => {
                let mut sampler = BernoulliUnionSampler::with_shared(
                    self.workload.clone(),
                    sizes,
                    *union_size,
                    samplers.clone(),
                    *policy,
                )?;
                if let Some(tries) = max_join_tries {
                    sampler.set_max_join_tries(*tries);
                }
                Box::new(sampler)
            }
            PreparedKind::Disjoint { samplers, sizes } => {
                Box::new(DisjointUnionSampler::with_shared(
                    self.workload.clone(),
                    sizes.clone(),
                    samplers.clone(),
                )?)
            }
        };
        let mut sampler: Box<dyn UnionSampler + Send> = match &self.reject_predicate {
            Some(p) => Box::new(PredicateSampler::new(base, p)?),
            None => base,
        };
        let report = sampler.report_mut();
        report.config = Some(self.summary.clone());
        report.prepared_bytes = self.prepared_bytes;
        report.snapshot_bytes = self.snapshot_bytes;
        report.restore_time = self.restore_time;
        self.minted.fetch_add(1, Ordering::Relaxed);
        Ok(sampler)
    }

    /// Approximate resident bytes of the prepared workload's base
    /// relations (the number stamped into every handle's report).
    pub fn prepared_bytes(&self) -> u64 {
        self.prepared_bytes
    }

    /// The estimated parameters the freeze committed to (snapshot
    /// serialization).
    pub(crate) fn frozen_params(&self) -> &FrozenParams {
        &self.frozen_params
    }

    /// Stamps the cost of the snapshot restore that produced this
    /// pipeline; every subsequently minted handle's report carries it.
    pub(crate) fn set_restore_cost(&mut self, snapshot_bytes: u64, restore_time: Duration) {
        self.snapshot_bytes = snapshot_bytes;
        self.restore_time = restore_time;
    }

    /// Size of the snapshot this pipeline was restored from; 0 when it
    /// was frozen in-process.
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Wall time of the snapshot restore that produced this pipeline;
    /// zero when it was frozen in-process.
    pub fn restore_time(&self) -> Duration {
        self.restore_time
    }

    /// The workload handles sample (after any push-down rewrite).
    pub fn workload(&self) -> &Arc<UnionWorkload> {
        &self.workload
    }

    /// The resolved configuration stamped into every handle's report.
    pub fn summary(&self) -> &PlanSummary {
        &self.summary
    }

    /// Per-join Exact-Weight artifacts (count tables + alias arenas)
    /// when *every* member sampler is exact-weight — what a snapshot
    /// persists so a restore can revive the samplers without any count
    /// recomputation or alias rebuild. `None` for online pipelines or
    /// any non-EW member (nothing to persist).
    pub(crate) fn ew_artifacts(&self) -> Option<Vec<suj_join::EwArtifacts>> {
        let samplers = match &self.kind {
            PreparedKind::Rejection { samplers, .. }
            | PreparedKind::Bernoulli { samplers, .. }
            | PreparedKind::Disjoint { samplers, .. } => samplers,
            PreparedKind::Online { .. } => return None,
        };
        samplers
            .iter()
            .map(|s| s.as_exact().map(|e| e.artifacts()))
            .collect()
    }

    /// Overrides the stamped configuration record — used by the engine
    /// to substitute the planner's summary (which names the rule that
    /// fired) for the builder's.
    #[must_use = "builder methods return the updated value; dropping it discards the change"]
    pub fn with_summary(mut self, summary: PlanSummary) -> Self {
        self.summary = summary;
        self
    }

    /// The root of per-handle RNG stream derivation (the builder's
    /// [`estimation_seed`](SamplerBuilder::estimation_seed)).
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Estimation passes paid at freeze time: 1 normally, 0 when a
    /// planner-probed overlap map was reused (the probe already paid
    /// it). Never grows afterwards — minting handles re-estimates
    /// nothing, which served workloads assert.
    pub fn estimation_passes(&self) -> u64 {
        self.estimation_passes
    }

    /// Handles minted so far.
    pub fn minted(&self) -> u64 {
        self.minted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Draw;
    use suj_storage::{CompareOp, Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn workload() -> Arc<UnionWorkload> {
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel(
                    "r1",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 10], vec![3, 20]],
                ),
                rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![
                rel("r2", &["a", "b"], vec![vec![1, 10], vec![9, 90]]),
                rel("s2", &["b", "c"], vec![vec![10, 100], vec![90, 900]]),
            ],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    #[test]
    fn every_strategy_builds_and_samples() {
        let w = workload();
        let exact = crate::exact::full_join_union(&w).unwrap();
        let strategies = [
            Strategy::Rejection,
            Strategy::Online(OnlineConfig {
                warmup: WalkEstimatorConfig {
                    max_walks_per_join: 100,
                    min_walks_per_join: 32,
                    ..Default::default()
                },
                ..Default::default()
            }),
            Strategy::Bernoulli(DesignationPolicy::Oracle),
            Strategy::Disjoint,
        ];
        for (i, strategy) in strategies.into_iter().enumerate() {
            let builder = SamplerBuilder::for_workload(w.clone()).strategy(strategy);
            let builder = match strategy {
                Strategy::Online(_) => builder,
                _ => builder.estimator(Estimator::Exact),
            };
            let mut sampler = builder.build().unwrap();
            let mut rng = SujRng::seed_from_u64(100 + i as u64);
            let (samples, report) = sampler.sample(40, &mut rng).unwrap();
            assert_eq!(samples.len(), 40, "strategy #{i}");
            assert!(report.accepted >= 40);
            for t in &samples {
                assert!(exact.union_set.contains(t), "strategy #{i}: non-member");
            }
        }
    }

    #[test]
    fn histogram_and_walk_estimators_build() {
        let w = workload();
        for estimator in [
            Estimator::Histogram(HistogramOptions::default()),
            Estimator::Histogram(HistogramOptions {
                exact_size_hints: true,
                ..Default::default()
            }),
            Estimator::Walk(WalkEstimatorConfig {
                max_walks_per_join: 200,
                ..Default::default()
            }),
        ] {
            let mut sampler = SamplerBuilder::for_workload(w.clone())
                .estimator(estimator)
                .cover_policy(CoverPolicy::MembershipOracle)
                .build()
                .unwrap();
            let mut rng = SujRng::seed_from_u64(5);
            let (samples, _) = sampler.sample(25, &mut rng).unwrap();
            assert_eq!(samples.len(), 25);
        }
    }

    #[test]
    fn prepared_bytes_accounts_sampler_footprint() {
        let w = workload();
        // Exact weights build count tables + alias arenas per join, so
        // the frozen footprint must exceed the bare workload's bytes…
        let prepared = SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .strategy(Strategy::Rejection)
            .weights(WeightKind::Exact)
            .freeze()
            .unwrap();
        let workload_bytes = w.memory_bytes() as u64;
        assert!(
            prepared.prepared_bytes() > workload_bytes,
            "prepared_bytes ({}) must include the samplers' count \
             tables and arenas on top of the workload ({workload_bytes})",
            prepared.prepared_bytes()
        );
        // …and exactly by the samplers' own accounting.
        let artifacts = prepared.ew_artifacts().expect("EW pipeline");
        assert_eq!(artifacts.len(), w.n_joins());

        // Online builds no per-join samplers: workload bytes only.
        let online = SamplerBuilder::for_workload(w.clone())
            .strategy(Strategy::Online(OnlineConfig::default()))
            .freeze()
            .unwrap();
        assert_eq!(online.prepared_bytes(), workload_bytes);
        assert!(online.ew_artifacts().is_none());
    }

    #[test]
    fn online_rejects_incompatible_estimator() {
        let w = workload();
        let err = SamplerBuilder::for_workload(w)
            .estimator(Estimator::Exact)
            .strategy(Strategy::Online(OnlineConfig::default()))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn inapplicable_knobs_are_rejected_not_ignored() {
        let w = workload();
        // Online honors neither per-join weights nor a cover policy.
        assert!(SamplerBuilder::for_workload(w.clone())
            .strategy(Strategy::Online(OnlineConfig::default()))
            .weights(WeightKind::ExtendedOlken)
            .build()
            .is_err());
        assert!(SamplerBuilder::for_workload(w.clone())
            .strategy(Strategy::Online(OnlineConfig::default()))
            .cover_policy(CoverPolicy::MembershipOracle)
            .build()
            .is_err());
        // Bernoulli and Disjoint have no cover.
        assert!(SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .strategy(Strategy::Bernoulli(DesignationPolicy::Oracle))
            .cover_strategy(CoverStrategy::DescendingSize)
            .build()
            .is_err());
        assert!(SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .strategy(Strategy::Disjoint)
            .max_cover_retries(5)
            .build()
            .is_err());
        // Applicable knobs still work.
        assert!(SamplerBuilder::for_workload(w)
            .estimator(Estimator::Exact)
            .strategy(Strategy::Bernoulli(DesignationPolicy::Oracle))
            .weights(WeightKind::Exact)
            .max_join_tries(500_000)
            .build()
            .is_ok());
    }

    #[test]
    fn predicate_reject_mode_filters_output() {
        let w = workload();
        let p = Predicate::cmp("c", CompareOp::Le, Value::int(200));
        let mut sampler = SamplerBuilder::for_workload(w)
            .estimator(Estimator::Exact)
            .predicate(p.clone(), PredicateMode::Reject)
            .build()
            .unwrap();
        let compiled = p.compile(sampler.workload().canonical_schema()).unwrap();
        let mut rng = SujRng::seed_from_u64(6);
        let (samples, report) = sampler.sample(60, &mut rng).unwrap();
        assert_eq!(samples.len(), 60);
        for t in &samples {
            assert!(compiled.eval(t));
        }
        // (9, 90, 900) fails the predicate and must have been rejected
        // at least once in 60 accepted draws.
        assert!(report.rejected_predicate > 0);
    }

    #[test]
    fn predicate_pushdown_mode_rewrites_workload() {
        let w = workload();
        let p = Predicate::cmp("c", CompareOp::Le, Value::int(200));
        let mut sampler = SamplerBuilder::for_workload(w)
            .estimator(Estimator::Exact)
            .predicate(p.clone(), PredicateMode::PushDown)
            .build()
            .unwrap();
        let compiled = p.compile(sampler.workload().canonical_schema()).unwrap();
        let mut rng = SujRng::seed_from_u64(7);
        let (samples, report) = sampler.sample(60, &mut rng).unwrap();
        for t in &samples {
            assert!(compiled.eval(t));
        }
        // Push-down filters at the base relations: no predicate-phase
        // rejections.
        assert_eq!(report.rejected_predicate, 0);
    }

    #[test]
    fn built_samplers_are_trait_objects() {
        let w = workload();
        let mut samplers: Vec<Box<dyn UnionSampler>> = vec![
            SamplerBuilder::for_workload(w.clone())
                .estimator(Estimator::Exact)
                .build()
                .unwrap(),
            SamplerBuilder::for_workload(w.clone())
                .estimator(Estimator::Exact)
                .strategy(Strategy::Disjoint)
                .build()
                .unwrap(),
            SamplerBuilder::for_workload(w)
                .estimator(Estimator::Exact)
                .strategy(Strategy::Bernoulli(DesignationPolicy::Record))
                .build()
                .unwrap(),
        ];
        let mut rng = SujRng::seed_from_u64(8);
        for sampler in &mut samplers {
            let mut seen = 0;
            while seen < 10 {
                if let Draw::Tuple(..) = sampler.draw(&mut rng).unwrap() {
                    seen += 1;
                }
            }
            assert!(sampler.emitted() >= 10);
        }
    }

    #[test]
    fn for_joins_validates_schemas() {
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 10]]),
                rel("s", &["b", "c"], vec![vec![10, 100]]),
            ],
        )
        .unwrap();
        let j_bad = suj_join::JoinSpec::chain(
            "bad",
            vec![
                rel("x", &["a", "d"], vec![vec![1, 10]]),
                rel("y", &["d", "e"], vec![vec![10, 100]]),
            ],
        )
        .unwrap();
        assert!(SamplerBuilder::for_joins(vec![Arc::new(j1), Arc::new(j_bad)]).is_err());
    }

    /// The builder path must be byte-identical to the legacy
    /// direct-constructor path (same seed, same estimator inputs).
    #[test]
    fn builder_matches_direct_construction() {
        let w = workload();
        let exact = crate::exact::full_join_union(&w).unwrap();
        let mut direct =
            SetUnionSampler::new(w.clone(), &exact.overlap, UnionSamplerConfig::default()).unwrap();
        let mut built = SamplerBuilder::for_workload(w)
            .estimator(Estimator::Exact)
            .build()
            .unwrap();
        let mut rng_a = SujRng::seed_from_u64(9);
        let mut rng_b = SujRng::seed_from_u64(9);
        let (a, _) = direct.sample(120, &mut rng_a).unwrap();
        let (b, _) = built.sample(120, &mut rng_b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn workload_accessor_exposes_schema() {
        let w = workload();
        let sampler = SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .build()
            .unwrap();
        assert_eq!(sampler.workload().canonical_schema(), w.canonical_schema());
    }
}
