//! Pins the serving half of the Exact-Weight artifact-restore
//! guarantee: loading an engine snapshot revives every exact-weight
//! sampler from its persisted count tables and alias arenas, so the
//! restored replica performs **zero** alias builds, reports
//! `estimations() == 0`, and serves draw streams bit-identical to the
//! donor's for the same root seed and request seed.
//!
//! One `#[test]` on purpose: [`suj_join::alias_builds`] is a
//! process-global counter, and exact-delta assertions are only
//! race-free when no other test threads build arenas concurrently
//! (cargo runs test binaries sequentially).

use suj_core::prelude::*;
use suj_storage::{Relation, Schema, Value};

fn rel(name: &str, attrs: &[&str], rows: &[&[i64]]) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .iter()
        .map(|vals| vals.iter().copied().map(Value::int).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

fn shop_engine() -> Engine {
    let mut c = Catalog::new();
    c.register(rel(
        "a_items",
        &["sku", "cat"],
        &[&[1, 7], &[2, 7], &[3, 9]],
    ))
    .unwrap();
    c.register(rel(
        "a_sales",
        &["sale", "sku"],
        &[&[100, 1], &[101, 1], &[102, 2]],
    ))
    .unwrap();
    c.register(rel("b_items", &["sku", "cat"], &[&[1, 7], &[5, 9]]))
        .unwrap();
    c.register(rel("b_sales", &["sale", "sku"], &[&[100, 1], &[200, 5]]))
        .unwrap();
    Engine::new(c)
}

#[test]
fn restored_engine_serves_without_alias_rebuild() {
    let query = UnionQuery::set_union()
        .chain("shop_a", ["a_items", "a_sales"])
        .unwrap()
        .chain("shop_b", ["b_items", "b_sales"])
        .unwrap();

    let engine = shop_engine();
    let donor = engine.prepare(&query).unwrap();
    let bytes = engine.snapshot_to_bytes().unwrap();

    let builds_before = suj_join::alias_builds();
    let restored_engine = Engine::load_snapshot_bytes(&bytes).unwrap();
    assert_eq!(
        suj_join::alias_builds(),
        builds_before,
        "snapshot restore must revive samplers from persisted arenas, not rebuild them"
    );

    let restored = restored_engine.prepare(&query).unwrap();
    assert_eq!(restored.estimations(), 0, "restore must not re-estimate");

    // Same (root seed, request seed) ⇒ bit-identical served samples;
    // reports agree on provenance and footprint.
    let mut donor_report = None;
    let mut restored_report = None;
    for seed in [1u64, 7, 42] {
        let (donor_samples, dr) = donor.sample(64, seed).unwrap();
        let (restored_samples, rr) = restored.sample(64, seed).unwrap();
        assert_eq!(donor_samples, restored_samples, "request seed {seed}");
        donor_report = Some(dr);
        restored_report = Some(rr);
    }
    let (donor_report, restored_report) = (donor_report.unwrap(), restored_report.unwrap());

    let donor_config = donor_report.config.as_ref().unwrap();
    let restored_config = restored_report.config.as_ref().unwrap();
    assert_eq!(
        donor_config.sizing.as_deref(),
        Some("exact"),
        "acyclic prepare must carry exact-size provenance: {donor_config}"
    );
    assert_eq!(
        restored_config.sizing, donor_config.sizing,
        "sizing provenance must survive the round trip"
    );

    // The footprint accounting sees count tables + arenas on both sides.
    assert!(donor_report.prepared_bytes > 0);
    assert_eq!(
        restored_report.prepared_bytes, donor_report.prepared_bytes,
        "restored footprint must match the donor's"
    );
}
