//! Property-based tests for the union framework over randomized
//! two-join workloads.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use std::sync::Arc;
use suj_core::algorithm1::UnionSamplerConfig;
use suj_core::prelude::*;
use suj_join::{JoinSpec, WeightKind};
use suj_stats::SujRng;
use suj_storage::{FxHashSet, Relation, Schema, Tuple, Value};

fn rel(name: &str, attrs: [&str; 2], rows: &[(i64, i64)]) -> Arc<Relation> {
    let schema = Schema::new(attrs).unwrap();
    let mut seen = FxHashSet::default();
    let tuples: Vec<Tuple> = rows
        .iter()
        .filter(|&&p| seen.insert(p))
        .map(|&(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
        .collect();
    Arc::new(Relation::new(name, schema, tuples).unwrap())
}

/// A random two-join workload over (a, b, c) with a shared second
/// relation (guaranteeing non-trivial overlap potential).
fn workload() -> impl Strategy<Value = UnionWorkload> {
    (
        prop::collection::vec((0i64..10, 0i64..5), 2..20),
        prop::collection::vec((0i64..10, 0i64..5), 2..20),
        prop::collection::vec((0i64..5, 0i64..8), 2..16),
    )
        .prop_map(|(r1, r2, s)| {
            let j1 = JoinSpec::chain(
                "j1",
                vec![rel("r1", ["a", "b"], &r1), rel("s1", ["b", "c"], &s)],
            )
            .unwrap();
            let j2 = JoinSpec::chain(
                "j2",
                vec![rel("r2", ["a", "b"], &r2), rel("s2", ["b", "c"], &s)],
            )
            .unwrap();
            UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Exact overlaps: union identities and cover partitioning hold on
    /// every random workload.
    #[test]
    fn exact_overlap_identities(w in workload()) {
        let exact = full_join_union(&w).unwrap();
        let truth = exact.union_size() as f64;
        prop_assert!((exact.overlap.union_size() - truth).abs() < 1e-6);
        for strategy in [
            CoverStrategy::AsGiven,
            CoverStrategy::DescendingSize,
            CoverStrategy::AscendingSize,
        ] {
            let cover = Cover::build(&exact.overlap, strategy);
            prop_assert!((cover.union_size() - truth).abs() < 1e-6);
            // Cover sizes never exceed their join sizes.
            for j in 0..w.n_joins() {
                prop_assert!(cover.sizes()[j] <= exact.join_size(j) as f64 + 1e-9);
            }
        }
    }

    /// Every sampler output is a member; requested counts are exact.
    #[test]
    fn algorithm1_counts_and_membership(w in workload(), seed in 0u64..1000) {
        let exact = full_join_union(&w).unwrap();
        prop_assume!(!exact.union_set.is_empty());
        let w = Arc::new(w);
        for policy in [CoverPolicy::Record, CoverPolicy::MembershipOracle] {
            let mut sampler = SetUnionSampler::new(
                w.clone(),
                &exact.overlap,
                UnionSamplerConfig {
                    policy,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rng = SujRng::seed_from_u64(seed);
            let (samples, report) = sampler.sample(25, &mut rng).unwrap();
            prop_assert_eq!(samples.len(), 25);
            prop_assert!(report.accepted >= 25);
            for t in &samples {
                prop_assert!(exact.union_set.contains(t));
            }
        }
    }

    /// The histogram estimator's Max-mode pairwise bound dominates
    /// truth; Avg mode never exceeds Max mode.
    #[test]
    fn histogram_modes_ordered(w in workload()) {
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let max_est =
            HistogramEstimator::new(&w, DegreeMode::Max, sizes.clone(), 0.0).unwrap();
        let avg_est = HistogramEstimator::new(&w, DegreeMode::Avg, sizes, 0.0).unwrap();
        let max_b = max_est.estimate_overlap(&[0, 1]);
        let avg_b = avg_est.estimate_overlap(&[0, 1]);
        prop_assert!(max_b >= exact.overlap.overlap(&[0, 1]) - 1e-6);
        prop_assert!(avg_b <= max_b + 1e-6);
    }

    /// Disjoint-union sampling: membership + exact counts with either
    /// weight kind.
    #[test]
    fn disjoint_union_members(w in workload(), seed in 0u64..1000) {
        let exact = full_join_union(&w).unwrap();
        prop_assume!(exact.join_size(0) + exact.join_size(1) > 0);
        let w = Arc::new(w);
        let mut sampler =
            DisjointUnionSampler::with_exact_sizes(w.clone(), WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(seed);
        let (samples, _) = sampler.sample(20, &mut rng).unwrap();
        prop_assert_eq!(samples.len(), 20);
        for t in &samples {
            prop_assert!(w.contains(0, t) || w.contains(1, t));
        }
    }

    /// Walk-based estimation never produces negative overlaps and its
    /// overlap never exceeds the anchor's size estimate.
    #[test]
    fn walk_estimates_are_consistent(w in workload(), seed in 0u64..1000) {
        let exact = full_join_union(&w).unwrap();
        prop_assume!(!exact.union_set.is_empty());
        let mut rng = SujRng::seed_from_u64(seed);
        let cfg = WalkEstimatorConfig {
            max_walks_per_join: 300,
            min_walks_per_join: 64,
            ..Default::default()
        };
        let est = suj_core::walk_estimator::walk_warmup(&w, &cfg, &mut rng).unwrap();
        let o = est.estimate_overlap(&[0, 1]);
        prop_assert!(o >= 0.0);
        let anchor = est.anchor_of(&[0, 1]);
        prop_assert!(o <= est.join_sizes[anchor] + 1e-9);
    }

    /// The membership-based mask agrees with per-join oracles.
    #[test]
    fn membership_masks_consistent(w in workload()) {
        let exact = full_join_union(&w).unwrap();
        for t in exact.union_set.iter().take(30) {
            let mask = w.membership_mask(t);
            prop_assert_eq!(mask & 1 != 0, w.contains(0, t));
            prop_assert_eq!(mask & 2 != 0, w.contains(1, t));
            prop_assert!(mask != 0);
        }
    }
}
