//! The paper's three union workloads (§9).
//!
//! * [`uq1`] — five chain joins of nation ⋈ supplier ⋈ customer ⋈
//!   orders ⋈ lineitem, one per overlap-scaled database variant.
//! * [`uq2`] — three chain joins of region ⋈ nation ⋈ supplier ⋈
//!   partsupp ⋈ part over the *same* data, differing only in pushed-down
//!   selection predicates (`Q2_N ∪ Q2_P ∪ Q2_S` following Carmeli et
//!   al.) — the large-overlap workload.
//! * [`uq3`] — one acyclic join plus two chain joins over supplier,
//!   customer, orders, with the base tables split vertically (different
//!   schemas per join) and horizontally (overlap-scaled variants) — the
//!   workload that needs the splitting method and template selection.

use crate::gen::{self, TpchConfig};
use std::sync::Arc;
use suj_core::error::CoreError;
use suj_core::predicate_mode::push_down;
use suj_core::workload::UnionWorkload;
use suj_join::{JoinEdge, JoinSpec};
use suj_storage::{CompareOp, Predicate, Relation, Value};

/// Workload construction options.
#[derive(Debug, Clone, Copy)]
pub struct UqOptions {
    /// Generator configuration (scale + seed).
    pub config: TpchConfig,
    /// Overlap scale `P ∈ [0, 1]`: fraction of base rows shared across
    /// variants (UQ1/UQ3).
    pub overlap_scale: f64,
}

impl Default for UqOptions {
    fn default() -> Self {
        Self {
            config: TpchConfig::default(),
            overlap_scale: 0.2,
        }
    }
}

impl UqOptions {
    /// Creates options.
    pub fn new(scale_units: usize, seed: u64, overlap_scale: f64) -> Self {
        Self {
            config: TpchConfig::new(scale_units, seed),
            overlap_scale,
        }
    }
}

/// UQ1: five chain joins over overlap-scaled variants.
pub fn uq1(opts: &UqOptions) -> Result<UnionWorkload, CoreError> {
    let cfg = &opts.config;
    let p = opts.overlap_scale;
    let nation = Arc::new(gen::nation());
    let mut joins = Vec::with_capacity(5);
    for v in 0..5u64 {
        let supplier = Arc::new(gen::supplier(cfg, &format!("supplier_v{v}"), v, p));
        let customer = Arc::new(gen::customer(cfg, &format!("customer_v{v}"), v, p));
        let orders = Arc::new(gen::orders(cfg, &format!("orders_v{v}"), v, p));
        let lineitem = Arc::new(gen::lineitem(cfg, &format!("lineitem_v{v}"), v, p));
        let spec = JoinSpec::chain(
            format!("uq1_j{v}"),
            vec![nation.clone(), supplier, customer, orders, lineitem],
        )
        .map_err(CoreError::Join)?;
        joins.push(Arc::new(spec));
    }
    UnionWorkload::new(joins)
}

/// The default UQ2 selection predicates, each retaining roughly 60% of
/// its column's domain so the three results overlap heavily.
pub fn uq2_predicates() -> [Predicate; 3] {
    [
        // Q2_N: nation-side restriction.
        Predicate::cmp("nationkey", CompareOp::Lt, Value::int(15)),
        // Q2_P: part-side restriction.
        Predicate::cmp("psize", CompareOp::Le, Value::int(30)),
        // Q2_S: supplier-side restriction (balance above ~40th pctile).
        Predicate::cmp("sbal", CompareOp::Ge, Value::int(340_000)),
    ]
}

/// UQ2: three predicate variants of region ⋈ nation ⋈ supplier ⋈
/// partsupp ⋈ part over the same data (push-down execution, §8.3).
pub fn uq2(opts: &UqOptions) -> Result<UnionWorkload, CoreError> {
    let cfg = &opts.config;
    let region = Arc::new(gen::region());
    let nation = Arc::new(gen::nation());
    let supplier = Arc::new(gen::supplier(cfg, "supplier", 0, 1.0));
    let partsupp = Arc::new(gen::partsupp(cfg, "partsupp", 0, 1.0));
    let part = Arc::new(gen::part(cfg, "part", 0, 1.0));
    let base = JoinSpec::chain("uq2_base", vec![region, nation, supplier, partsupp, part])
        .map_err(CoreError::Join)?;

    let mut joins = Vec::with_capacity(3);
    for (i, pred) in uq2_predicates().iter().enumerate() {
        let name = ["uq2_qn", "uq2_qp", "uq2_qs"][i];
        joins.push(Arc::new(push_down(&base, pred, name)?));
    }
    UnionWorkload::new(joins)
}

/// UQ3 building blocks for one variant: the vertically split relations.
struct Uq3Variant {
    supplier: Arc<Relation>,
    customer_full: Arc<Relation>,
    customer_core: Arc<Relation>,
    cust_bal: Arc<Relation>,
    orders: Arc<Relation>,
}

fn uq3_variant(cfg: &TpchConfig, v: u64, p: f64) -> Result<Uq3Variant, CoreError> {
    let supplier = Arc::new(gen::supplier(cfg, &format!("supplier_w{v}"), v, p));
    let customer = gen::customer(cfg, &format!("customer_w{v}"), v, p);
    let orders = Arc::new(gen::orders(cfg, &format!("orders_w{v}"), v, p));
    let customer_core = Arc::new(
        customer
            .project_distinct(
                format!("customer_core_w{v}"),
                &["custkey", "nationkey", "cname"],
            )
            .map_err(CoreError::Storage)?,
    );
    let cust_bal = Arc::new(
        customer
            .project_distinct(format!("cust_bal_w{v}"), &["custkey", "cbal"])
            .map_err(CoreError::Storage)?,
    );
    Ok(Uq3Variant {
        supplier,
        customer_full: Arc::new(customer),
        customer_core,
        cust_bal,
        orders,
    })
}

/// UQ3: one acyclic join + two chain joins with heterogeneous schemas.
///
/// * `uq3_star` (acyclic): customer_core at the center with supplier,
///   orders, and cust_bal as children.
/// * `uq3_chain3`: supplier ⋈ customer(full) ⋈ orders.
/// * `uq3_chain4`: supplier ⋈ customer_core ⋈ cust_bal ⋈ orders.
pub fn uq3(opts: &UqOptions) -> Result<UnionWorkload, CoreError> {
    let cfg = &opts.config;
    let p = opts.overlap_scale;

    // Variant 0: star join (tree with a degree-3 center).
    let v0 = uq3_variant(cfg, 0, p)?;
    let star = JoinSpec::with_edges(
        "uq3_star",
        vec![
            v0.customer_core.clone(),
            v0.supplier.clone(),
            v0.orders.clone(),
            v0.cust_bal.clone(),
        ],
        vec![
            JoinEdge {
                left: 0,
                right: 1,
                attrs: vec![Arc::from("nationkey")],
            },
            JoinEdge {
                left: 0,
                right: 2,
                attrs: vec![Arc::from("custkey")],
            },
            JoinEdge {
                left: 0,
                right: 3,
                attrs: vec![Arc::from("custkey")],
            },
        ],
    )
    .map_err(CoreError::Join)?;

    // Variant 1: plain three-relation chain.
    let v1 = uq3_variant(cfg, 1, p)?;
    let chain3 = JoinSpec::chain(
        "uq3_chain3",
        vec![
            v1.supplier.clone(),
            v1.customer_full.clone(),
            v1.orders.clone(),
        ],
    )
    .map_err(CoreError::Join)?;

    // Variant 2: four-relation chain with the customer split in two.
    let v2 = uq3_variant(cfg, 2, p)?;
    let chain4 = JoinSpec::chain(
        "uq3_chain4",
        vec![
            v2.supplier.clone(),
            v2.customer_core.clone(),
            v2.cust_bal.clone(),
            v2.orders.clone(),
        ],
    )
    .map_err(CoreError::Join)?;

    UnionWorkload::new(vec![Arc::new(star), Arc::new(chain3), Arc::new(chain4)])
}

/// UQ4 (extension): a union of **cyclic** joins in the spirit of
/// Fig. 1's `J_W` — the bundle-purchases query. Each join pairs two
/// orders of the same customer whose line items contain the same part:
///
/// ```text
/// customer ⋈ orders1 ⋈ orders2 ⋈ lineitem1 ⋈ lineitem2
///            (custkey)  (custkey)  (orderkey1)  (orderkey2)
///                               lineitem1 ⋈ lineitem2 on partkey  ← closes the cycle
/// ```
///
/// The paper's evaluation skips cyclic queries ("transforming cyclic to
/// acyclic joins … is done based on an existing work"); this workload
/// exercises that machinery end to end: spanning-tree sampling with
/// consistency rejection and skeleton+residual decomposition for the
/// histogram estimator.
pub fn uq4_cyclic(opts: &UqOptions) -> Result<UnionWorkload, CoreError> {
    let cfg = &opts.config;
    let p = opts.overlap_scale;
    let mut joins = Vec::with_capacity(3);
    for v in 0..3u64 {
        let customer = Arc::new(gen::customer(cfg, &format!("customer_x{v}"), v, p));
        let orders = gen::orders(cfg, &format!("orders_x{v}"), v, p);
        let lineitem = gen::lineitem(cfg, &format!("lineitem_x{v}"), v, p);

        let orders1 = Arc::new(
            orders
                .rename_attrs(format!("orders1_x{v}"), |a| match a {
                    "orderkey" => "orderkey1".into(),
                    "oprice" => "oprice1".into(),
                    other => other.into(),
                })
                .map_err(CoreError::Storage)?,
        );
        let orders2 = Arc::new(
            orders
                .rename_attrs(format!("orders2_x{v}"), |a| match a {
                    "orderkey" => "orderkey2".into(),
                    "oprice" => "oprice2".into(),
                    other => other.into(),
                })
                .map_err(CoreError::Storage)?,
        );
        let lineitem1 = Arc::new(
            lineitem
                .rename_attrs(format!("lineitem1_x{v}"), |a| match a {
                    "orderkey" => "orderkey1".into(),
                    "linenumber" => "linenumber1".into(),
                    "lquantity" => "lquantity1".into(),
                    other => other.into(),
                })
                .map_err(CoreError::Storage)?,
        );
        let lineitem2 = Arc::new(
            lineitem
                .rename_attrs(format!("lineitem2_x{v}"), |a| match a {
                    "orderkey" => "orderkey2".into(),
                    "linenumber" => "linenumber2".into(),
                    "lquantity" => "lquantity2".into(),
                    other => other.into(),
                })
                .map_err(CoreError::Storage)?,
        );

        // Natural edges: customer–orders1/2 (custkey), orders1–orders2
        // (custkey), orders–lineitem (orderkey1/2), and lineitem1–
        // lineitem2 (partkey) — the cycle-closing edge.
        let spec = JoinSpec::natural(
            format!("uq4_j{v}"),
            vec![customer, orders1, orders2, lineitem1, lineitem2],
        )
        .map_err(CoreError::Join)?;
        joins.push(Arc::new(spec));
    }
    UnionWorkload::new(joins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_core::exact::full_join_union;
    use suj_join::graph::{classify, JoinShape};

    fn opts(scale: usize, overlap: f64) -> UqOptions {
        UqOptions::new(scale, 11, overlap)
    }

    #[test]
    fn uq1_builds_five_chains() {
        let w = uq1(&opts(1, 0.2)).unwrap();
        assert_eq!(w.n_joins(), 5);
        for j in w.joins() {
            assert_eq!(classify(j), JoinShape::Chain, "join {}", j.name());
            assert_eq!(j.n_relations(), 5);
        }
        let sizes = w.exact_join_sizes().unwrap();
        for s in &sizes {
            assert!(*s > 0.0, "every UQ1 join must be non-empty: {sizes:?}");
        }
    }

    #[test]
    fn uq1_overlap_scale_controls_union_size() {
        let low = uq1(&opts(1, 0.1)).unwrap();
        let high = uq1(&opts(1, 0.9)).unwrap();
        let u_low = full_join_union(&low).unwrap().union_size();
        let u_high = full_join_union(&high).unwrap().union_size();
        // Higher overlap scale → more shared data → smaller set union.
        assert!(
            u_high < u_low,
            "union at P=0.9 ({u_high}) must be below P=0.1 ({u_low})"
        );
        // And the all-joins overlap must be larger at high P.
        let o_low = full_join_union(&low)
            .unwrap()
            .overlap
            .overlap(&[0, 1, 2, 3, 4]);
        let o_high = full_join_union(&high)
            .unwrap()
            .overlap
            .overlap(&[0, 1, 2, 3, 4]);
        assert!(o_high > o_low);
    }

    #[test]
    fn uq2_builds_three_filtered_chains_with_large_overlap() {
        let w = uq2(&opts(2, 0.2)).unwrap();
        assert_eq!(w.n_joins(), 3);
        for j in w.joins() {
            assert_eq!(classify(j), JoinShape::Chain);
        }
        let exact = full_join_union(&w).unwrap();
        // All three predicates intersect on a sizable region.
        let o_all = exact.overlap.overlap(&[0, 1, 2]);
        assert!(o_all > 0.0, "UQ2 must overlap");
        let min_join = (0..3).map(|j| exact.join_size(j)).min().unwrap() as f64;
        assert!(
            o_all >= min_join * 0.1,
            "UQ2 overlap should be large: {o_all} vs min join {min_join}"
        );
    }

    #[test]
    fn uq2_predicates_actually_filter() {
        let o = opts(2, 0.2);
        let w = uq2(&o).unwrap();
        let exact = full_join_union(&w).unwrap();
        // The unfiltered base join has |supplier ⋈ partsupp| = |partsupp|
        // rows (each partsupp row matches exactly one supplier/nation/
        // region chain).
        let unfiltered = o.config.n_part() * 2;
        for j in 0..3 {
            assert!(
                exact.join_size(j) < unfiltered,
                "predicate {j} must cut rows"
            );
            assert!(exact.join_size(j) > 0);
        }
    }

    #[test]
    fn uq3_has_one_acyclic_and_two_chains() {
        let w = uq3(&opts(1, 0.3)).unwrap();
        assert_eq!(w.n_joins(), 3);
        assert_eq!(classify(w.join(0)), JoinShape::Acyclic);
        assert_eq!(classify(w.join(1)), JoinShape::Chain);
        assert_eq!(classify(w.join(2)), JoinShape::Chain);
        assert_eq!(w.join(0).n_relations(), 4);
        assert_eq!(w.join(1).n_relations(), 3);
        assert_eq!(w.join(2).n_relations(), 4);
    }

    #[test]
    fn uq3_joins_share_the_output_attribute_set() {
        let w = uq3(&opts(1, 0.3)).unwrap();
        let canonical = w.canonical_schema();
        assert_eq!(canonical.arity(), 9);
        for j in w.joins() {
            for a in canonical.attrs() {
                assert!(
                    j.output_schema().contains(a),
                    "join {} missing {a}",
                    j.name()
                );
            }
        }
    }

    #[test]
    fn uq3_same_variant_decompositions_agree() {
        // chain3 and chain4 of the SAME variant produce identical
        // results (they re-normalize the same data); across variants
        // they differ. Build a zero-variant workload to verify the
        // vertical splits are lossless.
        let cfg = TpchConfig::new(1, 5);
        let v = uq3_variant(&cfg, 0, 1.0).unwrap();
        let chain3 = JoinSpec::chain(
            "c3",
            vec![
                v.supplier.clone(),
                v.customer_full.clone(),
                v.orders.clone(),
            ],
        )
        .unwrap();
        let chain4 = JoinSpec::chain(
            "c4",
            vec![
                v.supplier.clone(),
                v.customer_core.clone(),
                v.cust_bal.clone(),
                v.orders.clone(),
            ],
        )
        .unwrap();
        let w = UnionWorkload::new(vec![Arc::new(chain3), Arc::new(chain4)]).unwrap();
        let exact = full_join_union(&w).unwrap();
        assert_eq!(exact.join_results[0], exact.join_results[1]);
    }

    #[test]
    fn uq3_union_shrinks_with_overlap() {
        let low = uq3(&opts(1, 0.0)).unwrap();
        let high = uq3(&opts(1, 1.0)).unwrap();
        let u_low = full_join_union(&low).unwrap().union_size();
        let u_high = full_join_union(&high).unwrap().union_size();
        assert!(u_high < u_low, "{u_high} !< {u_low}");
    }

    #[test]
    fn uq4_joins_are_cyclic_and_nonempty() {
        let w = uq4_cyclic(&opts(1, 0.3)).unwrap();
        assert_eq!(w.n_joins(), 3);
        for j in w.joins() {
            assert_eq!(classify(j), JoinShape::Cyclic, "join {}", j.name());
            assert_eq!(j.n_relations(), 5);
        }
        let exact = full_join_union(&w).unwrap();
        for j in 0..3 {
            assert!(exact.join_size(j) > 0, "cyclic join {j} is empty");
        }
        assert!(exact.union_size() > 0);
    }

    #[test]
    fn uq4_results_are_bundle_purchases() {
        // Every result tuple must pair two orders of the same customer
        // whose line items reference the same part — check against the
        // canonical schema positions.
        let w = uq4_cyclic(&opts(1, 0.3)).unwrap();
        let exact = full_join_union(&w).unwrap();
        let schema = w.canonical_schema();
        let custkey = schema.position("custkey").unwrap();
        let partkey = schema.position("partkey").unwrap();
        assert!(schema.contains("orderkey1"));
        assert!(schema.contains("orderkey2"));
        // Spot-check: recompute membership for a few tuples directly.
        for t in exact.union_set.iter().take(20) {
            assert!(!t.get(custkey).is_null());
            assert!(!t.get(partkey).is_null());
        }
    }

    #[test]
    fn uq4_overlap_scale_behaves() {
        let low = uq4_cyclic(&opts(1, 0.0)).unwrap();
        let high = uq4_cyclic(&opts(1, 1.0)).unwrap();
        let u_low = full_join_union(&low).unwrap().union_size();
        let u_high = full_join_union(&high).unwrap().union_size();
        assert!(u_high < u_low, "{u_high} !< {u_low}");
        // At overlap 1.0 the three joins are identical.
        let exact = full_join_union(&high).unwrap();
        assert_eq!(exact.union_size(), exact.join_size(0));
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let a = uq1(&opts(1, 0.5)).unwrap();
        let b = uq1(&opts(1, 0.5)).unwrap();
        let ea = full_join_union(&a).unwrap();
        let eb = full_join_union(&b).unwrap();
        assert_eq!(ea.union_size(), eb.union_size());
        assert_eq!(ea.union_set, eb.union_set);
    }
}
