//! TPC-H style data generation and the paper's union workloads (§9).
//!
//! The evaluation "uses three datasets consisting of different types of
//! joins tailored from the TPC-H benchmark", generated with TPCH-DBGen
//! at various scales and overlap ratios. This crate is the dbgen
//! substitute: a deterministic, seeded generator producing the eight
//! TPC-H tables with the official cardinality ratios at laptop scales,
//! plus builders for the three union workloads:
//!
//! * **UQ1** — five chain joins over nation ⋈ supplier ⋈ customer ⋈
//!   orders ⋈ lineitem, one per database variant, with a controllable
//!   overlap scale `P%` (a `P%` prefix of each base relation is shared
//!   across variants, the rest re-drawn per variant).
//! * **UQ2** — three chain joins over region ⋈ nation ⋈ supplier ⋈
//!   partsupp ⋈ part on the *same* data with different selection
//!   predicates pushed down (`Q2_N ∪ Q2_P ∪ Q2_S`) — a large-overlap
//!   workload.
//! * **UQ3** — one acyclic join and two chain joins over supplier,
//!   customer, and orders, split vertically and horizontally into
//!   different schemas — the workload that exercises the splitting
//!   method (§5.2) and template selection (§8.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod tables;
pub mod text;
pub mod workload;

pub use gen::{generate_catalog, TpchConfig};
pub use workload::{uq1, uq2, uq3, uq4_cyclic, UqOptions};

/// Commonly used items.
pub mod prelude {
    pub use crate::gen::{generate_catalog, TpchConfig};
    pub use crate::workload::{uq1, uq2, uq3, uq4_cyclic, UqOptions};
}
