//! The deterministic TPC-H generator (dbgen substitute).
//!
//! Generates the eight tables at a requested scale from a single seed,
//! plus *variants* implementing the paper's overlap scale: "when
//! generating different queries, we keep P% of the data the same in the
//! original corresponding relations" (§9). A variant keeps the leading
//! `P%` of every scaled table's rows identical to the base and re-draws
//! the payload and foreign-key attributes of the remainder from a
//! variant-specific stream (primary keys stay fixed so referential
//! integrity holds and join results stay non-empty).

use crate::tables::*;
use crate::text;
use suj_stats::{SujRng, Zipf};
use suj_storage::{Catalog, ColumnBuilder, Relation};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Linear scale: row counts = `RATIOS · scale_units`.
    pub scale_units: usize,
    /// Master seed; every table derives its own stream.
    pub seed: u64,
    /// Zipf exponent applied to every foreign-key draw (0.0 = the
    /// uniform TPC-H default). The paper's conclusion lists "the impact
    /// of data skew on approximations" as future work; the skew
    /// ablation uses this knob.
    pub skew: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            scale_units: 4,
            seed: 42,
            skew: 0.0,
        }
    }
}

impl TpchConfig {
    /// Creates a config with uniform (unskewed) foreign keys.
    pub fn new(scale_units: usize, seed: u64) -> Self {
        Self {
            scale_units,
            seed,
            skew: 0.0,
        }
    }

    /// Sets the foreign-key Zipf exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Draws a foreign key in `[0, n)`: uniform at skew 0, Zipf-skewed
    /// otherwise (rank 0 hottest). The uniform path is kept bit-exact
    /// with the pre-skew generator so seeded datasets stay stable.
    fn fk(&self, rng: &mut SujRng, n: i64, zipf: Option<&Zipf>) -> i64 {
        match zipf {
            None => rng.range_i64(0, n),
            Some(z) => z.draw(rng) as i64,
        }
    }

    fn zipf_for(&self, n: usize) -> Option<Zipf> {
        if self.skew > 0.0 {
            Zipf::new(n, self.skew)
        } else {
            None
        }
    }

    fn rng_for(&self, table: &str, variant: u64) -> SujRng {
        // Stable per-table, per-variant stream derived from the seed.
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in table.bytes() {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        SujRng::seed_from_u64(h.wrapping_add(variant.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }

    /// Supplier count at this scale.
    pub fn n_supplier(&self) -> usize {
        RATIOS.supplier * self.scale_units
    }

    /// Customer count at this scale.
    pub fn n_customer(&self) -> usize {
        RATIOS.customer * self.scale_units
    }

    /// Part count at this scale.
    pub fn n_part(&self) -> usize {
        RATIOS.part * self.scale_units
    }

    /// Orders count at this scale.
    pub fn n_orders(&self) -> usize {
        RATIOS.orders * self.scale_units
    }

    /// Lineitem count at this scale.
    pub fn n_lineitem(&self) -> usize {
        RATIOS.lineitem * self.scale_units
    }
}

/// `region`: the five fixed rows.
pub fn region() -> Relation {
    let mut key = ColumnBuilder::new();
    let mut name = ColumnBuilder::new();
    for (i, n) in text::REGIONS.iter().enumerate() {
        key.push_i64(i as i64);
        name.push_str(n);
    }
    Relation::from_columns("region", region_schema(), vec![key.finish(), name.finish()])
        .expect("static columns")
}

/// `nation`: the 25 fixed rows with region assignment.
pub fn nation() -> Relation {
    let mut key = ColumnBuilder::new();
    let mut name = ColumnBuilder::new();
    let mut region = ColumnBuilder::new();
    for (i, n) in text::NATIONS.iter().enumerate() {
        key.push_i64(i as i64);
        name.push_str(n);
        region.push_i64(text::nation_region(i) as i64);
    }
    Relation::from_columns(
        "nation",
        nation_schema(),
        vec![key.finish(), name.finish(), region.finish()],
    )
    .expect("static columns")
}

/// Builds the `supplier` table for one variant. `shared` rows (prefix)
/// come from the base stream; the tail re-draws nationkey and payload.
pub fn supplier(cfg: &TpchConfig, name: &str, variant: u64, overlap: f64) -> Relation {
    let n = cfg.n_supplier();
    let shared_rows = shared_count(n, overlap, variant);
    let mut base = cfg.rng_for("supplier", 0);
    let mut var = cfg.rng_for("supplier", variant);
    let zipf = cfg.zipf_for(N_NATIONS);
    let mut keys = ColumnBuilder::new();
    let mut nations = ColumnBuilder::new();
    let mut bals = ColumnBuilder::new();
    let mut names = ColumnBuilder::new();
    for key in 0..n as i64 {
        // Always advance the base stream so the shared prefix is
        // identical across variants.
        let base_draw = (
            cfg.fk(&mut base, N_NATIONS as i64, zipf.as_ref()),
            text::acctbal(&mut base),
        );
        let var_draw = (
            cfg.fk(&mut var, N_NATIONS as i64, zipf.as_ref()),
            text::acctbal(&mut var),
        );
        let (nationkey, bal) = if (key as usize) < shared_rows {
            base_draw
        } else {
            var_draw
        };
        keys.push_i64(key);
        nations.push_i64(nationkey);
        bals.push_i64(bal);
        names.push_str(&text::supplier_name(key));
    }
    Relation::from_columns(
        name,
        supplier_schema(),
        vec![
            keys.finish(),
            nations.finish(),
            bals.finish(),
            names.finish(),
        ],
    )
    .expect("arity fixed")
}

/// Builds the `customer` table for one variant.
pub fn customer(cfg: &TpchConfig, name: &str, variant: u64, overlap: f64) -> Relation {
    let n = cfg.n_customer();
    let shared_rows = shared_count(n, overlap, variant);
    let mut base = cfg.rng_for("customer", 0);
    let mut var = cfg.rng_for("customer", variant);
    let zipf = cfg.zipf_for(N_NATIONS);
    let mut keys = ColumnBuilder::new();
    let mut nations = ColumnBuilder::new();
    let mut bals = ColumnBuilder::new();
    let mut names = ColumnBuilder::new();
    for key in 0..n as i64 {
        let base_draw = (
            cfg.fk(&mut base, N_NATIONS as i64, zipf.as_ref()),
            text::acctbal(&mut base),
        );
        let var_draw = (
            cfg.fk(&mut var, N_NATIONS as i64, zipf.as_ref()),
            text::acctbal(&mut var),
        );
        let (nationkey, bal) = if (key as usize) < shared_rows {
            base_draw
        } else {
            var_draw
        };
        keys.push_i64(key);
        nations.push_i64(nationkey);
        bals.push_i64(bal);
        names.push_str(&text::customer_name(key));
    }
    Relation::from_columns(
        name,
        customer_schema(),
        vec![
            keys.finish(),
            nations.finish(),
            bals.finish(),
            names.finish(),
        ],
    )
    .expect("arity fixed")
}

/// Builds the `orders` table for one variant.
pub fn orders(cfg: &TpchConfig, name: &str, variant: u64, overlap: f64) -> Relation {
    let n = cfg.n_orders();
    let n_cust = cfg.n_customer() as i64;
    let shared_rows = shared_count(n, overlap, variant);
    let mut base = cfg.rng_for("orders", 0);
    let mut var = cfg.rng_for("orders", variant);
    let zipf = cfg.zipf_for(n_cust as usize);
    let mut keys = ColumnBuilder::new();
    let mut custs = ColumnBuilder::new();
    let mut prices = ColumnBuilder::new();
    for key in 0..n as i64 {
        let base_draw = (
            cfg.fk(&mut base, n_cust, zipf.as_ref()),
            text::totalprice(&mut base),
        );
        let var_draw = (
            cfg.fk(&mut var, n_cust, zipf.as_ref()),
            text::totalprice(&mut var),
        );
        let (custkey, price) = if (key as usize) < shared_rows {
            base_draw
        } else {
            var_draw
        };
        keys.push_i64(key);
        custs.push_i64(custkey);
        prices.push_i64(price);
    }
    Relation::from_columns(
        name,
        orders_schema(),
        vec![keys.finish(), custs.finish(), prices.finish()],
    )
    .expect("arity fixed")
}

/// Builds the `lineitem` table for one variant (3 lines per order).
pub fn lineitem(cfg: &TpchConfig, name: &str, variant: u64, overlap: f64) -> Relation {
    let n = cfg.n_lineitem();
    let n_part = cfg.n_part() as i64;
    let shared_rows = shared_count(n, overlap, variant);
    let mut base = cfg.rng_for("lineitem", 0);
    let mut var = cfg.rng_for("lineitem", variant);
    let zipf = cfg.zipf_for(n_part as usize);
    let mut orderkeys = ColumnBuilder::new();
    let mut linenumbers = ColumnBuilder::new();
    let mut partkeys = ColumnBuilder::new();
    let mut qtys = ColumnBuilder::new();
    for i in 0..n as i64 {
        let orderkey = i / 3;
        let linenumber = i % 3;
        let base_draw = (
            cfg.fk(&mut base, n_part, zipf.as_ref()),
            base.range_i64(1, 51),
        );
        let var_draw = (
            cfg.fk(&mut var, n_part, zipf.as_ref()),
            var.range_i64(1, 51),
        );
        let (partkey, qty) = if (i as usize) < shared_rows {
            base_draw
        } else {
            var_draw
        };
        orderkeys.push_i64(orderkey);
        linenumbers.push_i64(linenumber);
        partkeys.push_i64(partkey);
        qtys.push_i64(qty);
    }
    Relation::from_columns(
        name,
        lineitem_schema(),
        vec![
            orderkeys.finish(),
            linenumbers.finish(),
            partkeys.finish(),
            qtys.finish(),
        ],
    )
    .expect("arity fixed")
}

/// Builds the `part` table for one variant.
pub fn part(cfg: &TpchConfig, name: &str, variant: u64, overlap: f64) -> Relation {
    let n = cfg.n_part();
    let shared_rows = shared_count(n, overlap, variant);
    let mut base = cfg.rng_for("part", 0);
    let mut var = cfg.rng_for("part", variant);
    let mut keys = ColumnBuilder::new();
    let mut names = ColumnBuilder::new();
    let mut types = ColumnBuilder::new();
    let mut sizes = ColumnBuilder::new();
    for key in 0..n as i64 {
        let base_draw = (
            text::part_name(&mut base),
            text::part_type(&mut base),
            base.range_i64(1, 51),
        );
        let var_draw = (
            text::part_name(&mut var),
            text::part_type(&mut var),
            var.range_i64(1, 51),
        );
        let (pname, ptype, psize) = if (key as usize) < shared_rows {
            base_draw
        } else {
            var_draw
        };
        keys.push_i64(key);
        names.push_str(&pname);
        types.push_str(ptype);
        sizes.push_i64(psize);
    }
    Relation::from_columns(
        name,
        part_schema(),
        vec![
            keys.finish(),
            names.finish(),
            types.finish(),
            sizes.finish(),
        ],
    )
    .expect("arity fixed")
}

/// Builds the `partsupp` table for one variant (2 suppliers per part).
pub fn partsupp(cfg: &TpchConfig, name: &str, variant: u64, overlap: f64) -> Relation {
    let n_part = cfg.n_part();
    let n_supp = cfg.n_supplier() as i64;
    let n = n_part * 2;
    let shared_rows = shared_count(n, overlap, variant);
    let mut base = cfg.rng_for("partsupp", 0);
    let mut var = cfg.rng_for("partsupp", variant);
    let zipf = cfg.zipf_for(n_supp as usize);
    let mut partkeys = ColumnBuilder::new();
    let mut suppkeys = ColumnBuilder::new();
    let mut costs = ColumnBuilder::new();
    let mut prev_supp = 0i64;
    for i in 0..n as i64 {
        let partkey = i / 2;
        let slot = i % 2;
        let base_draw = (
            cfg.fk(&mut base, n_supp, zipf.as_ref()),
            base.range_i64(100, 100_000),
        );
        let var_draw = (
            cfg.fk(&mut var, n_supp, zipf.as_ref()),
            var.range_i64(100, 100_000),
        );
        let (supp_raw, cost) = if (i as usize) < shared_rows {
            base_draw
        } else {
            var_draw
        };
        // The two suppliers of a part must be distinct: nudge the second
        // slot off the first when they collide.
        let suppkey = if slot == 0 {
            prev_supp = supp_raw;
            supp_raw
        } else if supp_raw == prev_supp {
            (supp_raw + 1) % n_supp.max(1)
        } else {
            supp_raw
        };
        partkeys.push_i64(partkey);
        suppkeys.push_i64(suppkey);
        costs.push_i64(cost);
    }
    Relation::from_columns(
        name,
        partsupp_schema(),
        vec![partkeys.finish(), suppkeys.finish(), costs.finish()],
    )
    .expect("arity fixed")
}

/// Rows kept identical to the base stream for a variant at the given
/// overlap scale (variant 0 IS the base: full overlap).
fn shared_count(n: usize, overlap: f64, variant: u64) -> usize {
    if variant == 0 {
        n
    } else {
        ((n as f64) * overlap.clamp(0.0, 1.0)).round() as usize
    }
}

/// Generates the base catalog (variant 0) with all eight tables.
pub fn generate_catalog(cfg: &TpchConfig) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(region()).expect("fresh catalog");
    catalog.register(nation()).expect("fresh catalog");
    catalog
        .register(supplier(cfg, "supplier", 0, 1.0))
        .expect("fresh catalog");
    catalog
        .register(customer(cfg, "customer", 0, 1.0))
        .expect("fresh catalog");
    catalog
        .register(orders(cfg, "orders", 0, 1.0))
        .expect("fresh catalog");
    catalog
        .register(lineitem(cfg, "lineitem", 0, 1.0))
        .expect("fresh catalog");
    catalog
        .register(part(cfg, "part", 0, 1.0))
        .expect("fresh catalog");
    catalog
        .register(partsupp(cfg, "partsupp", 0, 1.0))
        .expect("fresh catalog");
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_storage::Value;

    fn cfg() -> TpchConfig {
        TpchConfig::new(2, 7)
    }

    #[test]
    fn cardinalities_scale_linearly() {
        let c = cfg();
        assert_eq!(c.n_supplier(), 20);
        assert_eq!(c.n_customer(), 60);
        assert_eq!(c.n_orders(), 90);
        assert_eq!(c.n_lineitem(), 270);
        let cat = generate_catalog(&c);
        assert_eq!(cat.get("region").unwrap().len(), 5);
        assert_eq!(cat.get("nation").unwrap().len(), 25);
        assert_eq!(cat.get("supplier").unwrap().len(), 20);
        assert_eq!(cat.get("partsupp").unwrap().len(), 80);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_catalog(&cfg());
        let b = generate_catalog(&cfg());
        for name in [
            "supplier", "customer", "orders", "lineitem", "part", "partsupp",
        ] {
            let ra = a.get(name).unwrap();
            let rb = b.get(name).unwrap();
            assert_eq!(ra.tuples(), rb.tuples(), "table {name} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_catalog(&TpchConfig::new(2, 1));
        let b = generate_catalog(&TpchConfig::new(2, 2));
        assert_ne!(
            a.get("supplier").unwrap().tuples(),
            b.get("supplier").unwrap().tuples()
        );
    }

    #[test]
    fn variant_overlap_shares_exact_prefix() {
        let c = cfg();
        let base = supplier(&c, "s0", 0, 1.0);
        let v1 = supplier(&c, "s1", 1, 0.5);
        let v2 = supplier(&c, "s2", 2, 0.5);
        let n = base.len();
        let shared = n / 2;
        for i in 0..shared {
            assert_eq!(base.row_ref(i), v1.row_ref(i), "shared prefix must match");
            assert_eq!(base.row_ref(i), v2.row_ref(i));
        }
        // Tails must differ from the base (statistically certain).
        let tail_same = (shared..n)
            .filter(|&i| base.row_ref(i) == v1.row_ref(i))
            .count();
        assert!(tail_same < (n - shared) / 2, "tail should be re-drawn");
        // And the two variants' tails differ from each other.
        let cross_same = (shared..n)
            .filter(|&i| v1.row_ref(i) == v2.row_ref(i))
            .count();
        assert!(cross_same < (n - shared) / 2);
    }

    #[test]
    fn overlap_zero_and_one_extremes() {
        let c = cfg();
        let base = orders(&c, "o0", 0, 1.0);
        let full = orders(&c, "o1", 1, 1.0);
        assert_eq!(base.tuples(), full.tuples(), "overlap 1.0 means identical");
        let none = orders(&c, "o2", 1, 0.0);
        let same = (0..base.len())
            .filter(|&i| base.row_ref(i) == none.row_ref(i))
            .count();
        assert!(same < base.len() / 2, "overlap 0.0 should re-draw ~all");
    }

    #[test]
    fn foreign_keys_stay_in_range() {
        let c = cfg();
        let o = orders(&c, "o", 3, 0.3);
        for row in o.iter_rows() {
            let ck = row.value(1).as_int().unwrap();
            assert!((0..c.n_customer() as i64).contains(&ck));
        }
        let li = lineitem(&c, "l", 3, 0.3);
        for row in li.iter_rows() {
            let ok = row.value(0).as_int().unwrap();
            assert!((0..c.n_orders() as i64).contains(&ok));
            let pk = row.value(2).as_int().unwrap();
            assert!((0..c.n_part() as i64).contains(&pk));
        }
        let ps = partsupp(&c, "ps", 3, 0.3);
        for row in ps.iter_rows() {
            let sk = row.value(1).as_int().unwrap();
            assert!((0..c.n_supplier() as i64).contains(&sk));
        }
    }

    #[test]
    fn skew_increases_fk_concentration() {
        let uniform = TpchConfig::new(4, 9);
        let skewed = TpchConfig::new(4, 9).with_skew(1.5);
        let max_deg = |cfg: &TpchConfig| {
            let o = orders(cfg, "o", 0, 1.0);
            suj_storage::HashIndex::build_single(&o, "custkey").max_degree()
        };
        let mu = max_deg(&uniform);
        let ms = max_deg(&skewed);
        assert!(ms > mu * 2, "skewed max degree {ms} vs uniform {mu}");
        // Hot keys are the low ranks.
        let o = orders(&skewed, "o", 0, 1.0);
        let idx = suj_storage::HashIndex::build_single(&o, "custkey");
        assert!(idx.degree(&[Value::int(0)]) > idx.degree(&[Value::int(50)]));
    }

    #[test]
    fn zero_skew_is_bit_exact_with_default_generator() {
        let plain = TpchConfig::new(2, 7);
        let explicit = TpchConfig::new(2, 7).with_skew(0.0);
        let a = orders(&plain, "o", 1, 0.5);
        let b = orders(&explicit, "o", 1, 0.5);
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn tables_are_duplicate_free() {
        // Set-semantics requirement (§3: "no duplicates in each join"
        // needs duplicate-free base relations).
        let c = cfg();
        let cat = generate_catalog(&c);
        for name in [
            "supplier", "customer", "orders", "lineitem", "part", "partsupp",
        ] {
            let r = cat.get(name).unwrap();
            assert_eq!(
                r.distinct().len(),
                r.len(),
                "table {name} contains duplicate rows"
            );
        }
    }

    #[test]
    fn partsupp_has_two_distinct_suppliers_per_part() {
        let c = cfg();
        let ps = partsupp(&c, "ps", 0, 1.0);
        for i in (0..ps.len()).step_by(2) {
            let a = ps.row_ref(i).value(1);
            let b = ps.row_ref(i + 1).value(1);
            assert_eq!(ps.row_ref(i).value(0), ps.row_ref(i + 1).value(0));
            // With the +n/2 offset the two suppliers of a part are
            // distinct whenever n_supp ≥ 2.
            assert_ne!(a, b, "part {} has duplicate supplier", i / 2);
        }
    }
}
