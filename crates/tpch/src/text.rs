//! Deterministic text generation for table payloads.
//!
//! TPC-H names and types are drawn from fixed vocabularies; this module
//! reproduces that flavor deterministically from the generator's seed so
//! relations are reproducible and payload columns carry realistic-looking
//! low-cardinality string data (which matters for histogram statistics).

use suj_stats::SujRng;

/// The five TPC-H region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nation names.
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// TPC-H part type words (Type x Syllable 1–3 flavor).
pub const PART_TYPES: [&str; 12] = [
    "STANDARD ANODIZED TIN",
    "STANDARD BURNISHED COPPER",
    "SMALL PLATED BRASS",
    "SMALL POLISHED STEEL",
    "MEDIUM ANODIZED NICKEL",
    "MEDIUM BRUSHED TIN",
    "LARGE BURNISHED COPPER",
    "LARGE PLATED STEEL",
    "ECONOMY ANODIZED BRASS",
    "ECONOMY POLISHED NICKEL",
    "PROMO BRUSHED COPPER",
    "PROMO PLATED TIN",
];

/// Mapping of nation index to region index (TPC-H's fixed assignment is
/// approximated by a uniform spread).
pub fn nation_region(nation: usize) -> usize {
    nation % REGIONS.len()
}

/// Deterministic supplier name.
pub fn supplier_name(key: i64) -> String {
    format!("Supplier#{key:09}")
}

/// Deterministic customer name.
pub fn customer_name(key: i64) -> String {
    format!("Customer#{key:09}")
}

/// Deterministic part name from a small vocabulary.
pub fn part_name(rng: &mut SujRng) -> String {
    const COLORS: [&str; 8] = [
        "almond",
        "antique",
        "aquamarine",
        "azure",
        "beige",
        "bisque",
        "black",
        "blanched",
    ];
    const MATERIALS: [&str; 6] = ["linen", "pink", "powder", "puff", "rose", "steel"];
    format!(
        "{} {}",
        COLORS[rng.index(COLORS.len())],
        MATERIALS[rng.index(MATERIALS.len())]
    )
}

/// A random part type.
pub fn part_type(rng: &mut SujRng) -> &'static str {
    PART_TYPES[rng.index(PART_TYPES.len())]
}

/// Account balance in cents, as TPC-H's [-999.99, 9999.99] scaled to an
/// integer value (integers keep tuple identity exact across variants).
pub fn acctbal(rng: &mut SujRng) -> i64 {
    rng.range_i64(-99_999, 1_000_000)
}

/// Order total price in cents.
pub fn totalprice(rng: &mut SujRng) -> i64 {
    rng.range_i64(10_000, 50_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_have_expected_sizes() {
        assert_eq!(REGIONS.len(), 5);
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(PART_TYPES.len(), 12);
    }

    #[test]
    fn nation_region_is_total() {
        for n in 0..25 {
            assert!(nation_region(n) < 5);
        }
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(supplier_name(7), "Supplier#000000007");
        assert_eq!(customer_name(123), "Customer#000000123");
    }

    #[test]
    fn generated_text_is_seed_stable() {
        let mut a = SujRng::seed_from_u64(5);
        let mut b = SujRng::seed_from_u64(5);
        assert_eq!(part_name(&mut a), part_name(&mut b));
        assert_eq!(part_type(&mut a), part_type(&mut b));
        assert_eq!(acctbal(&mut a), acctbal(&mut b));
    }

    #[test]
    fn balances_in_range() {
        let mut rng = SujRng::seed_from_u64(1);
        for _ in 0..1000 {
            let b = acctbal(&mut rng);
            assert!((-99_999..1_000_000).contains(&b));
            let p = totalprice(&mut rng);
            assert!((10_000..50_000_000).contains(&p));
        }
    }
}
