//! TPC-H table schemas and cardinality ratios.
//!
//! Join attributes use standardized names (§2: "join attributes are
//! standardized to have the same names"): `regionkey`, `nationkey`,
//! `suppkey`, `custkey`, `orderkey`, `partkey`. Payload attributes are
//! table-prefixed so schemas never collide accidentally.
//!
//! Cardinalities scale linearly in "scale units" preserving the official
//! TPC-H ratios (per SF-GB: supplier 10k, customer 150k, part 200k,
//! partsupp 800k, orders 1.5M, lineitem ~6M → normalized here to
//! 10 : 30 : 20 : 40 : 45 : 135 per unit, with fixed region=5 and
//! nation=25).

use suj_storage::Schema;

/// Rows of each table per scale unit (region and nation are fixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// Suppliers per unit.
    pub supplier: usize,
    /// Customers per unit.
    pub customer: usize,
    /// Parts per unit.
    pub part: usize,
    /// Partsupp rows per unit (2 suppliers per part).
    pub partsupp: usize,
    /// Orders per unit (1.5 per customer).
    pub orders: usize,
    /// Lineitems per unit (3 per order).
    pub lineitem: usize,
}

/// The normalized TPC-H ratios used by the generator.
pub const RATIOS: Cardinalities = Cardinalities {
    supplier: 10,
    customer: 30,
    part: 20,
    partsupp: 40,
    orders: 45,
    lineitem: 135,
};

/// Number of regions (fixed by TPC-H).
pub const N_REGIONS: usize = 5;

/// Number of nations (fixed by TPC-H).
pub const N_NATIONS: usize = 25;

/// `region(regionkey, rname)`.
pub fn region_schema() -> Schema {
    Schema::new(["regionkey", "rname"]).expect("static schema")
}

/// `nation(nationkey, nname, regionkey)`.
pub fn nation_schema() -> Schema {
    Schema::new(["nationkey", "nname", "regionkey"]).expect("static schema")
}

/// `supplier(suppkey, nationkey, sbal, sname)`.
pub fn supplier_schema() -> Schema {
    Schema::new(["suppkey", "nationkey", "sbal", "sname"]).expect("static schema")
}

/// `customer(custkey, nationkey, cbal, cname)`.
pub fn customer_schema() -> Schema {
    Schema::new(["custkey", "nationkey", "cbal", "cname"]).expect("static schema")
}

/// `orders(orderkey, custkey, oprice)`.
pub fn orders_schema() -> Schema {
    Schema::new(["orderkey", "custkey", "oprice"]).expect("static schema")
}

/// `lineitem(orderkey, linenumber, partkey, lquantity)`.
pub fn lineitem_schema() -> Schema {
    Schema::new(["orderkey", "linenumber", "partkey", "lquantity"]).expect("static schema")
}

/// `part(partkey, pname, ptype, psize)`.
pub fn part_schema() -> Schema {
    Schema::new(["partkey", "pname", "ptype", "psize"]).expect("static schema")
}

/// `partsupp(partkey, suppkey, pscost)`.
pub fn partsupp_schema() -> Schema {
    Schema::new(["partkey", "suppkey", "pscost"]).expect("static schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_follow_tpch_proportions() {
        // lineitem : orders = 3 : 1, orders : customer = 1.5 : 1,
        // partsupp : part = 2 : 1.
        assert_eq!(RATIOS.lineitem, RATIOS.orders * 3);
        assert_eq!(RATIOS.orders * 2, RATIOS.customer * 3);
        assert_eq!(RATIOS.partsupp, RATIOS.part * 2);
    }

    #[test]
    fn schemas_share_standardized_join_attrs() {
        assert!(nation_schema().contains("regionkey"));
        assert!(region_schema().contains("regionkey"));
        assert!(supplier_schema().contains("nationkey"));
        assert!(customer_schema().contains("nationkey"));
        assert!(orders_schema().contains("custkey"));
        assert!(lineitem_schema().contains("orderkey"));
        assert!(partsupp_schema().contains("partkey"));
        assert!(part_schema().contains("partkey"));
    }

    #[test]
    fn payload_attrs_do_not_collide() {
        let schemas = [
            region_schema(),
            nation_schema(),
            supplier_schema(),
            customer_schema(),
            orders_schema(),
            lineitem_schema(),
            part_schema(),
            partsupp_schema(),
        ];
        // The only shared names must be the six join keys.
        let keys = [
            "regionkey",
            "nationkey",
            "suppkey",
            "custkey",
            "orderkey",
            "partkey",
        ];
        for i in 0..schemas.len() {
            for j in (i + 1)..schemas.len() {
                for a in schemas[i].shared_with(&schemas[j]) {
                    assert!(keys.contains(&a.as_ref()), "unexpected shared attr {a}");
                }
            }
        }
    }
}
