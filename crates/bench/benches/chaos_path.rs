//! Chaos-path serving: request latency and success rate over TCP with
//! and without the standard deterministic fault plan.
//!
//! The serving tier's failure containment (deadlines, typed error
//! frames, reconnecting clients, CRC-checked payloads) is only worth
//! its keep if the fault-free path stays fast and the faulted path
//! degrades gracefully. This bench drives the same seeded request
//! batch through a clean server and through one whose every connection
//! passes a fault injector ([`FaultConfig::standard`]), recording p50
//! and p99 request latency plus the end-to-end success rate. Every
//! fault is scheduled by a root seed, so runs are reproducible.
//!
//! Full runs write a machine-readable `BENCH_9.json` at the workspace
//! root. `--test` (the CI smoke mode) runs a reduced request count,
//! asserts that the fault-free run succeeds completely and that every
//! faulted request ends in a typed outcome (success or `NetError`,
//! never a hang or panic), and skips the JSON write — wall-clock
//! assertions do not belong in shared CI.
//!
//! Requires `--features faults`; without the feature the binary is a
//! no-op stub so `cargo bench --no-run` stays green.

#[cfg(not(feature = "faults"))]
fn main() {
    println!("chaos_path: built without --features faults; nothing to do");
}

#[cfg(feature = "faults")]
fn main() {
    chaos::run();
}

#[cfg(feature = "faults")]
mod chaos {
    use std::time::{Duration, Instant};
    use suj_bench::FigureTable;
    use suj_core::catalog::{Catalog, Engine};
    use suj_core::query::UnionQuery;
    use suj_core::serve::ServiceConfig;
    use suj_net::{Client, FaultConfig, FaultPlan, Server, ServerOptions};
    use suj_storage::{Relation, Schema, Tuple, Value};

    const SEED: u64 = 2023;

    fn engine() -> Engine {
        let rel = |name: &str, attrs: [&str; 2], k: i64| {
            let schema = Schema::new(attrs).expect("schema");
            let rows = (0..512)
                .map(|i| Tuple::new(vec![Value::int(i % 37), Value::int((i * k) % 23)]))
                .collect();
            Relation::new(name, schema, rows).expect("relation")
        };
        let mut catalog = Catalog::new();
        catalog.register(rel("ra", ["a", "b"], 3)).unwrap();
        catalog.register(rel("rb", ["a", "b"], 5)).unwrap();
        catalog.register(rel("s", ["b", "c"], 7)).unwrap();
        Engine::new(catalog)
    }

    fn query() -> UnionQuery {
        UnionQuery::set_union()
            .chain("j1", ["ra", "s"])
            .unwrap()
            .chain("j2", ["rb", "s"])
            .unwrap()
    }

    struct Measurement {
        key: String,
        requests: usize,
        succeeded: usize,
        p50: Duration,
        p99: Duration,
    }

    impl Measurement {
        fn success_rate(&self) -> f64 {
            self.succeeded as f64 / self.requests.max(1) as f64
        }
    }

    fn percentile(sorted: &[Duration], p: f64) -> Duration {
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Drives `requests` seeded sample requests through one server,
    /// optionally under a fault plan on both sides of the wire.
    fn measure(key: &str, requests: usize, n: usize, plan: Option<FaultPlan>) -> Measurement {
        let mut options = ServerOptions::default()
            .with_io_grace(Duration::from_millis(500))
            .with_drain_grace(Duration::from_millis(200));
        if let Some(plan) = plan {
            options = options.with_fault_plan(plan);
        }
        let server = Server::bind_with(
            engine(),
            "127.0.0.1:0",
            ServiceConfig::with_workers(2),
            options,
        )
        .expect("bind");

        let connect = |seq: u64| -> Option<Client> {
            let client = Client::connect(server.addr())
                .ok()?
                .with_busy_retries(64)
                .with_retry_seed(SEED ^ seq)
                .with_reconnect(6)
                .with_io_timeout(Duration::from_secs(2))
                .ok()?;
            Some(match plan {
                Some(p) => {
                    client.with_fault_plan(FaultPlan::new(p.seed() ^ 1, FaultConfig::standard()))
                }
                None => client,
            })
        };

        let mut client = connect(0).expect("initial connect");
        let mut remote = client.prepare(&query());
        let mut conn_seq = 0u64;
        let mut latencies = Vec::with_capacity(requests);
        let mut succeeded = 0usize;
        for r in 0..requests {
            // A faulted connection can die during prepare or between
            // requests; rebuilding the client is part of the measured
            // resilience story, not a bench artifact.
            if remote.is_err() {
                conn_seq += 1;
                match connect(conn_seq) {
                    Some(c) => {
                        client = c;
                        remote = client.prepare(&query());
                    }
                    None => continue,
                }
            }
            let Ok(prepared) = &remote else { continue };
            let prepared = prepared.clone();
            let start = Instant::now();
            match client.sample(&prepared, n, r as u64) {
                Ok(batch) => {
                    assert_eq!(batch.tuples.len(), n, "{key}: short batch at request {r}");
                    latencies.push(start.elapsed());
                    succeeded += 1;
                }
                Err(_) => {
                    // Typed failure: drop the client so the next
                    // iteration reconnects.
                    latencies.push(start.elapsed());
                    remote = Err(suj_net::NetError::ConnectionReset);
                }
            }
        }
        drop(client);
        server.stop();

        let mut ok_latencies: Vec<Duration> = latencies;
        ok_latencies.sort();
        Measurement {
            key: key.to_string(),
            requests,
            succeeded,
            p50: percentile(&ok_latencies, 0.50),
            p99: percentile(&ok_latencies, 0.99),
        }
    }

    fn write_json(measurements: &[Measurement]) {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
        let mut out = String::from("{\n  \"pr\": 9,\n  \"bench\": \"chaos_path\",\n");
        out.push_str(
            "  \"config\": \"TCP serving, 2 workers, n=64/request, standard fault plan vs fault-free\",\n",
        );
        out.push_str("  \"runs\": [\n");
        for (i, m) in measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"requests\": {}, \"succeeded\": {}, \
                 \"success_rate\": {:.4}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}",
                m.key,
                m.requests,
                m.succeeded,
                m.success_rate(),
                m.p50.as_secs_f64() * 1e6,
                m.p99.as_secs_f64() * 1e6,
            ));
            out.push_str(if i + 1 < measurements.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).expect("write BENCH_9.json");
        println!("wrote {path}");
    }

    pub fn run() {
        let smoke = std::env::args().any(|a| a == "--test");
        let (requests, n) = if smoke { (40, 32) } else { (400, 64) };

        let clean = measure("fault-free", requests, n, None);
        let faulted = measure(
            "standard-faults",
            requests,
            n,
            Some(FaultPlan::new(SEED, FaultConfig::standard())),
        );

        let mut table = FigureTable::new(
            "Chaos path — request latency and success rate over TCP",
            &["config", "requests", "ok", "rate", "p50", "p99"],
        );
        for m in [&clean, &faulted] {
            table.push_row(vec![
                m.key.clone(),
                format!("{}", m.requests),
                format!("{}", m.succeeded),
                format!("{:.3}", m.success_rate()),
                format!("{:.1?}", m.p50),
                format!("{:.1?}", m.p99),
            ]);
        }
        println!("{table}");

        assert_eq!(
            clean.succeeded, clean.requests,
            "fault-free serving must not lose requests"
        );
        // The standard plan drops ~1.5% of operations per connection
        // and the client retries; the end-to-end rate must stay
        // serviceable — a collapse here means containment regressed.
        assert!(
            faulted.success_rate() >= 0.5,
            "faulted success rate {:.3} collapsed",
            faulted.success_rate()
        );

        if smoke {
            println!("smoke mode: skipping BENCH_9.json");
            return;
        }
        write_json(&[clean, faulted]);
    }
}
