//! Criterion microbench: `Strategy::Auto` against the manual §9
//! configurations on the set-union workloads — the measurement behind
//! the planner's "within 2× of the best manual configuration"
//! guarantee, plus the planning probe itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use suj_bench::{build_auto_sampler, build_workload, manual_set_union_candidates, UqOptions};
use suj_core::prelude::*;
use suj_stats::SujRng;

fn bench_auto_vs_manual(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let mut group = c.benchmark_group("auto_planner");
    group.sample_size(10);

    for name in ["uq1", "uq2", "uq3"] {
        let w = Arc::new(build_workload(name, &opts).expect("workload"));

        let mut auto = build_auto_sampler(w.clone(), 42).expect("auto sampler");
        let label = auto
            .report()
            .config
            .as_ref()
            .map(|cfg| cfg.to_string())
            .unwrap_or_default();
        eprintln!("auto_planner/{name}: {label}");
        group.bench_function(format!("{name}/auto/N=200"), |b| {
            let mut rng = SujRng::seed_from_u64(5);
            b.iter(|| black_box(auto.sample(200, &mut rng).expect("run").0.len()))
        });

        for (manual_label, mut sampler) in manual_set_union_candidates(&w, 42) {
            group.bench_function(format!("{name}/{manual_label}/N=200"), |b| {
                let mut rng = SujRng::seed_from_u64(5);
                b.iter(|| black_box(sampler.sample(200, &mut rng).expect("run").0.len()))
            });
        }
    }
    group.finish();
}

fn bench_planning_probe(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let mut group = c.benchmark_group("planning_probe");
    group.sample_size(10);
    for name in ["uq1", "uq2", "uq3"] {
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        group.bench_function(format!("{name}/plan"), |b| {
            b.iter(|| {
                let plan = Planner::default().plan(&w, UnionSemantics::Set);
                black_box(plan.rule)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_auto_vs_manual, bench_planning_probe);
criterion_main!(benches);
