//! Prepare-path throughput: what the columnar storage engine buys on
//! the *build* side of a query — index construction, §8.3 predicate
//! push-down, and resident footprint — measured on the §9-style TPC-H
//! union workloads (uq1–uq3).
//!
//! The row-major baseline is measured **in-process**: each relation is
//! materialized back into the pre-PR representation (a `Vec<Tuple>` of
//! `Arc<[Value]>` rows) and the pre-PR algorithms are replayed over it —
//! the same open-addressing dictionary build reading `row.get(p)` per
//! attribute, and tuple-at-a-time predicate evaluation. The columnar
//! side runs the shipped code: [`HashIndex::build`] over typed columns
//! and [`CompiledPredicate::select`]. Resident bytes compare
//! [`Relation::memory_bytes`] against the row-major estimate (per-row
//! `Arc` headers + boxed `Value` cells + string heap).
//!
//! Full runs append a machine-readable `BENCH_5.json` at the workspace
//! root (per-workload rows/sec for both sides, speedups, and resident
//! bytes) so later PRs have a perf trajectory to compare against.
//! `--test` (the CI smoke mode) runs a reduced rep count, asserts the
//! paths agree, and skips the JSON write — wall-clock assertions do not
//! belong in shared CI.

use std::sync::Arc;
use std::time::{Duration, Instant};
use suj_bench::{build_workload, FigureTable, UqOptions};
use suj_storage::{hash_values, CompareOp, HashIndex, Predicate, Relation, Tuple, Value};

/// The pre-PR (row-major) dictionary+CSR index build, replayed over
/// materialized tuples: identical table shape and probe order, but
/// every attribute read chases the row's `Arc<[Value]>`.
struct RowMajorIndex {
    offsets: Vec<u32>,
    row_ids: Vec<u32>,
    max_degree: usize,
}

fn row_major_index_build(rows: &[Tuple], positions: &[usize]) -> RowMajorIndex {
    const EMPTY: u32 = u32::MAX;
    let cap = (rows.len().max(1) * 2).next_power_of_two();
    let mask = cap - 1;
    let mut ids = vec![EMPTY; cap];
    let mut hashes = vec![0u64; cap];
    let mut key_values: Vec<Value> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut row_keys: Vec<u32> = Vec::with_capacity(rows.len());
    let key_arity = positions.len();
    for row in rows {
        let hash = hash_values(positions.iter().map(|&p| row.get(p)));
        let next_id = counts.len() as u32;
        let mut slot = hash as usize & mask;
        let kid = loop {
            let id = ids[slot];
            if id == EMPTY {
                ids[slot] = next_id;
                hashes[slot] = hash;
                break next_id;
            }
            let base = id as usize * key_arity;
            if hashes[slot] == hash
                && positions
                    .iter()
                    .enumerate()
                    .all(|(i, &p)| &key_values[base + i] == row.get(p))
            {
                break id;
            }
            slot = (slot + 1) & mask;
        };
        if kid == next_id {
            key_values.extend(positions.iter().map(|&p| row.get(p).clone()));
            counts.push(0);
        }
        counts[kid as usize] += 1;
        row_keys.push(kid);
    }
    let n_keys = counts.len();
    let mut offsets: Vec<u32> = Vec::with_capacity(n_keys + 1);
    let mut total = 0u32;
    offsets.push(0);
    for &c in &counts {
        total += c;
        offsets.push(total);
    }
    let mut cursor: Vec<u32> = offsets[..n_keys].to_vec();
    let mut row_ids = vec![0u32; rows.len()];
    for (rid, &kid) in row_keys.iter().enumerate() {
        let c = &mut cursor[kid as usize];
        row_ids[*c as usize] = rid as u32;
        *c += 1;
    }
    RowMajorIndex {
        offsets,
        row_ids,
        max_degree: counts.iter().copied().max().unwrap_or(0) as usize,
    }
}

/// Estimated resident bytes of the pre-PR row-major layout: one
/// `Arc<[Value]>` per row (16-byte header) plus the boxed cells plus
/// each string cell's own `Arc<str>` heap block.
fn row_major_bytes(rows: &[Tuple]) -> usize {
    let cell = std::mem::size_of::<Value>();
    rows.iter()
        .map(|t| {
            16 + t.arity() * cell
                + t.values()
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => 16 + s.len(),
                        _ => 0,
                    })
                    .sum::<usize>()
        })
        .sum()
}

/// Distinct base relations of a workload (`Arc` identity).
fn distinct_relations(w: &suj_core::UnionWorkload) -> Vec<Arc<Relation>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for j in w.joins() {
        for r in j.relations() {
            if seen.insert(Arc::as_ptr(r) as usize) {
                out.push(r.clone());
            }
        }
    }
    out
}

struct Side {
    rows_per_sec: f64,
}

struct Comparison {
    key: String,
    columnar: Side,
    row_major: Side,
    columnar_bytes: usize,
    row_major_bytes: usize,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.columnar.rows_per_sec / self.row_major.rows_per_sec.max(1.0)
    }
}

fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> (Duration, u64) {
    let mut elapsed = Duration::MAX;
    let mut sink = 0u64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        elapsed = elapsed.min(start.elapsed());
    }
    (elapsed, sink)
}

/// Index build on every attribute of every distinct relation, both
/// layouts, with agreement checks.
fn measure_index_build(workload: &str, opts: &UqOptions, reps: usize) -> Comparison {
    let w = build_workload(workload, opts).expect("workload");
    let relations = distinct_relations(&w);
    let total_rows: usize = relations.iter().map(|r| r.len() * r.schema().arity()).sum();

    // Pre-materialize the row-major representation outside the timed
    // region (the pre-PR engine held it for free).
    let tuple_sets: Vec<Vec<Tuple>> = relations.iter().map(|r| r.tuples()).collect();

    let (col_time, col_sink) = best_of(reps, || {
        let mut sink = 0u64;
        for r in &relations {
            for attr in r.schema().attrs() {
                let idx = HashIndex::build(r, std::slice::from_ref(attr));
                sink = sink.wrapping_add(idx.max_degree() as u64);
            }
        }
        sink
    });
    let (row_time, row_sink) = best_of(reps, || {
        let mut sink = 0u64;
        for (r, rows) in relations.iter().zip(&tuple_sets) {
            for p in 0..r.schema().arity() {
                let idx = row_major_index_build(rows, &[p]);
                sink = sink.wrapping_add(idx.max_degree as u64);
            }
        }
        sink
    });
    // Same data, same algorithm → identical degree structure.
    assert_eq!(col_sink, row_sink, "index builds disagree on {workload}");
    // Spot-check one CSR against the other.
    if let (Some(r), Some(rows)) = (relations.first(), tuple_sets.first()) {
        let attr = r.schema().attr(0).clone();
        let a = HashIndex::build(r, &[attr]);
        let b = row_major_index_build(rows, &[0]);
        assert_eq!(a.max_degree(), b.max_degree);
        assert_eq!(a.n_keys() + 1, b.offsets.len());
        assert_eq!(
            a.postings(0),
            &b.row_ids[b.offsets[0] as usize..b.offsets[1] as usize]
        );
    }

    let columnar_bytes: usize = relations.iter().map(|r| r.memory_bytes()).sum();
    let rm_bytes: usize = tuple_sets.iter().map(|t| row_major_bytes(t)).sum();
    Comparison {
        key: format!("{workload}/index-build"),
        columnar: Side {
            rows_per_sec: total_rows as f64 / col_time.as_secs_f64(),
        },
        row_major: Side {
            rows_per_sec: total_rows as f64 / row_time.as_secs_f64(),
        },
        columnar_bytes,
        row_major_bytes: rm_bytes,
    }
}

/// §8.3-style push-down selection over every distinct relation:
/// vectorized `select` vs tuple-at-a-time `eval`.
fn measure_pushdown(workload: &str, opts: &UqOptions, reps: usize) -> Comparison {
    let w = build_workload(workload, opts).expect("workload");
    let relations = distinct_relations(&w);
    let tuple_sets: Vec<Vec<Tuple>> = relations.iter().map(|r| r.tuples()).collect();
    // One range predicate per relation on its leading attribute —
    // the shape UQ2's Q2 conjuncts take after push-down.
    let preds: Vec<_> = relations
        .iter()
        .map(|r| {
            let attr = r.schema().attr(0).as_ref();
            Predicate::And(vec![
                Predicate::cmp(attr, CompareOp::Ge, Value::int(2)),
                Predicate::cmp(attr, CompareOp::Le, Value::int(1_000_000)),
            ])
            .compile(r.schema())
            .unwrap()
        })
        .collect();
    let total_rows: usize = relations.iter().map(|r| r.len()).sum();

    let (col_time, col_sink) = best_of(reps, || {
        let mut sink = 0u64;
        for (r, p) in relations.iter().zip(&preds) {
            sink = sink.wrapping_add(p.select(r).count() as u64);
        }
        sink
    });
    let (row_time, row_sink) = best_of(reps, || {
        let mut sink = 0u64;
        for (rows, p) in tuple_sets.iter().zip(&preds) {
            sink = sink.wrapping_add(rows.iter().filter(|t| p.eval(t)).count() as u64);
        }
        sink
    });
    assert_eq!(col_sink, row_sink, "selection paths disagree on {workload}");

    Comparison {
        key: format!("{workload}/push-down"),
        columnar: Side {
            rows_per_sec: total_rows as f64 / col_time.as_secs_f64(),
        },
        row_major: Side {
            rows_per_sec: total_rows as f64 / row_time.as_secs_f64(),
        },
        columnar_bytes: 0,
        row_major_bytes: 0,
    }
}

fn write_json(comparisons: &[Comparison]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    let mut out = String::from("{\n  \"pr\": 5,\n  \"bench\": \"prepare_path\",\n");
    out.push_str(
        "  \"config\": \"columnar storage engine vs in-process row-major replay, \
         scale_units=64, overlap=0.2\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows_per_sec\": {:.0}, \
             \"row_major_rows_per_sec\": {:.0}, \"speedup\": {:.2}",
            c.key,
            c.columnar.rows_per_sec,
            c.row_major.rows_per_sec,
            c.speedup()
        ));
        if c.columnar_bytes > 0 {
            out.push_str(&format!(
                ", \"memory_bytes\": {}, \"row_major_bytes\": {}, \"bytes_ratio\": {:.2}",
                c.columnar_bytes,
                c.row_major_bytes,
                c.columnar_bytes as f64 / c.row_major_bytes.max(1) as f64
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < comparisons.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_5.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let reps = if smoke { 2 } else { 15 };
    let opts = UqOptions::new(64, 42, 0.2);

    let mut table = FigureTable::new(
        "Prepare path — columnar vs row-major",
        &[
            "config",
            "rows/s",
            "row-major rows/s",
            "speedup",
            "bytes",
            "rm bytes",
        ],
    );
    let mut comparisons = Vec::new();
    for workload in ["uq1", "uq2", "uq3"] {
        for c in [
            measure_index_build(workload, &opts, reps),
            measure_pushdown(workload, &opts, reps),
        ] {
            table.push_row(vec![
                c.key.clone(),
                format!("{:.0}", c.columnar.rows_per_sec),
                format!("{:.0}", c.row_major.rows_per_sec),
                format!("{:.2}x", c.speedup()),
                if c.columnar_bytes > 0 {
                    c.columnar_bytes.to_string()
                } else {
                    "-".into()
                },
                if c.row_major_bytes > 0 {
                    c.row_major_bytes.to_string()
                } else {
                    "-".into()
                },
            ]);
            comparisons.push(c);
        }
    }
    println!("{table}");

    if smoke {
        // CI smoke: both paths ran, agreed, and produced sane numbers;
        // wall-clock claims are for the full run only.
        assert!(comparisons.iter().all(|c| c.columnar.rows_per_sec > 0.0));
        println!("smoke mode: skipping BENCH_5.json");
        return;
    }
    for c in &comparisons {
        if c.columnar_bytes > 0 {
            assert!(
                c.columnar_bytes < c.row_major_bytes,
                "{}: columnar {} B not below row-major {} B",
                c.key,
                c.columnar_bytes,
                c.row_major_bytes
            );
        }
    }
    write_json(&comparisons);
}
