//! Criterion microbench: the per-join sampling subroutine (§3.2) —
//! Exact-Weight vs Extended-Olken vs wander-join walks on a UQ1 chain.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use suj_bench::{build_workload, UqOptions};
use suj_join::weights::build_sampler;
use suj_join::{WanderJoin, WeightKind};
use suj_stats::SujRng;

fn bench_join_sampling(c: &mut Criterion) {
    let opts = UqOptions::new(4, 42, 0.2);
    let w = build_workload("uq1", &opts).expect("workload");
    let spec = w.join(0).clone();

    let ew = build_sampler(spec.clone(), WeightKind::Exact).expect("ew");
    let eo = build_sampler(spec.clone(), WeightKind::ExtendedOlken).expect("eo");
    let wander = WanderJoin::new(spec.clone()).expect("wander");

    let mut group = c.benchmark_group("join_sampling");
    group.sample_size(30);

    group.bench_function("exact_weight_sample", |b| {
        let mut rng = SujRng::seed_from_u64(1);
        b.iter(|| black_box(ew.sample(&mut rng)))
    });
    group.bench_function("extended_olken_sample", |b| {
        let mut rng = SujRng::seed_from_u64(2);
        b.iter(|| black_box(eo.sample(&mut rng)))
    });
    group.bench_function("wander_walk", |b| {
        let mut rng = SujRng::seed_from_u64(3);
        b.iter(|| black_box(wander.walk(&mut rng)))
    });
    group.bench_function("exact_weight_setup", |b| {
        b.iter(|| {
            black_box(build_sampler(spec.clone(), WeightKind::Exact).expect("ew"));
        })
    });
    group.bench_function("extended_olken_setup", |b| {
        b.iter(|| {
            black_box(build_sampler(spec.clone(), WeightKind::ExtendedOlken).expect("eo"));
        })
    });
    group.finish();

    // Keep one Arc alive to avoid dropping costs inside the loop above.
    let _hold: Arc<suj_join::JoinSpec> = spec;
}

criterion_group!(benches, bench_join_sampling);
criterion_main!(benches);
