//! Criterion microbench: cover-policy ablation (DESIGN.md #1) — paper
//! Record policy vs MembershipOracle vs the Bernoulli union trick, all
//! with exact parameters on UQ2 (the high-overlap workload where the
//! policies differ most).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use suj_bench::{build_workload, UqOptions};
use suj_core::algorithm1::UnionSamplerConfig;
use suj_core::prelude::*;
use suj_join::WeightKind;
use suj_stats::SujRng;

fn bench_cover_policies(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let w = Arc::new(build_workload("uq2", &opts).expect("workload"));
    let exact = full_join_union(&w).expect("ground truth");
    let sizes: Vec<f64> = (0..w.n_joins())
        .map(|j| exact.join_size(j) as f64)
        .collect();

    let mut group = c.benchmark_group("cover_ablation");
    group.sample_size(10);

    for (label, policy) in [
        ("record", CoverPolicy::Record),
        ("oracle", CoverPolicy::MembershipOracle),
    ] {
        let mut sampler = SetUnionSampler::new(
            w.clone(),
            &exact.overlap,
            UnionSamplerConfig {
                weights: WeightKind::Exact,
                policy,
                strategy: CoverStrategy::AsGiven,
                ..Default::default()
            },
        )
        .expect("sampler");
        group.bench_function(format!("{label}/N=200"), |b| {
            let mut rng = SujRng::seed_from_u64(3);
            b.iter(|| black_box(sampler.sample(200, &mut rng).expect("run").0.len()))
        });
    }

    let mut bernoulli = BernoulliUnionSampler::new(
        w.clone(),
        &sizes,
        exact.union_size() as f64,
        WeightKind::Exact,
    )
    .expect("bernoulli");
    group.bench_function("bernoulli/N=200", |b| {
        let mut rng = SujRng::seed_from_u64(4);
        b.iter(|| black_box(bernoulli.sample(200, &mut rng).expect("run").0.len()))
    });

    group.finish();
}

criterion_group!(benches, bench_cover_policies);
criterion_main!(benches);
