//! Criterion microbench: union-size estimation (Fig. 4 kernel) —
//! histogram-based (Theorem 4) and random-walk (§6) estimators vs the
//! FullJoinUnion baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use suj_bench::{build_workload, UqOptions};
use suj_core::prelude::*;
use suj_core::walk_estimator::{walk_warmup, WalkEstimatorConfig};
use suj_stats::SujRng;

fn bench_union_size(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let uq1 = build_workload("uq1", &opts).expect("uq1");
    let uq3 = build_workload("uq3", &opts).expect("uq3");

    let mut group = c.benchmark_group("union_size");
    group.sample_size(10);

    for (name, w) in [("uq1", &uq1), ("uq3", &uq3)] {
        group.bench_function(format!("{name}/histogram"), |b| {
            b.iter(|| {
                let est = HistogramEstimator::with_olken(w, DegreeMode::Max).expect("est");
                black_box(est.overlap_map().expect("map").union_size())
            })
        });
        group.bench_function(format!("{name}/random_walk"), |b| {
            let mut rng = SujRng::seed_from_u64(7);
            b.iter(|| {
                let est = walk_warmup(w, &WalkEstimatorConfig::default(), &mut rng).expect("est");
                black_box(est.overlap_map().expect("map").union_size())
            })
        });
        group.bench_function(format!("{name}/full_join_union"), |b| {
            b.iter(|| black_box(full_join_union(w).expect("exact").union_size()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_union_size);
criterion_main!(benches);
