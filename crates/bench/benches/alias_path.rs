//! Alias-cascade draw throughput: the factorized-count + alias-arena
//! draw path (`JoinSampler::sample_batch`, one O(1) alias lookup per
//! tree edge) against the pre-arena linear-scan reference
//! (`ExactWeightSampler::sample_rows_linear`, which walks each key's
//! postings weighted by the exact counts).
//!
//! Both paths share the same count tables, the same per-tuple
//! marginals, and the same allocation-free draw loop — the only
//! difference is the per-edge child pick, so the ratio isolates the
//! cascade's win. The gap widens with fanout: uq1–uq3 carry moderate
//! TPC-H fanout, while the `zipf_hot` chain concentrates postings on a
//! few Zipf-hot keys, exactly the shape where a size-biased linear
//! scan degenerates and the alias lookup does not.
//!
//! Full runs append a machine-readable `BENCH_10.json` at the
//! workspace root (per-workload cascade vs. linear draws/sec, the
//! speedup, prepare time, and the resident footprint split into count
//! tables vs. alias arenas). `--test` (the CI smoke mode) runs a
//! reduced draw count, skips the JSON write, and asserts the cascade
//! is at least as fast as the linear scan on the high-fanout workload
//! — the structural claim of this optimisation, stable even on noisy
//! shared hardware.

use std::sync::Arc;
use std::time::Instant;
use suj_bench::{build_workload, FigureTable, UqOptions};
use suj_join::{ExactWeightSampler, JoinSampler, JoinSpec, RowDraw};
use suj_stats::{SujRng, Zipf};
use suj_storage::{Relation, Schema, Tuple, Value};

struct Measurement {
    key: String,
    cascade_dps: f64,
    linear_dps: f64,
    prepare_ms: f64,
    resident_bytes: usize,
    arena_bytes: usize,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        if self.linear_dps > 0.0 {
            self.cascade_dps / self.linear_dps
        } else {
            0.0
        }
    }
}

/// Draws `n` tuples through the linear-scan reference path — the same
/// accept loop as `sample_batch`, with the per-edge alias lookup
/// replaced by the postings scan.
fn linear_batch(sampler: &ExactWeightSampler, n: usize, rng: &mut SujRng, out: &mut Vec<Tuple>) {
    out.reserve(n);
    let mut draw = RowDraw::new();
    let mut accepted = 0usize;
    while accepted < n {
        if sampler.sample_rows_linear(rng, &mut draw) {
            out.push(sampler.materialize(&draw));
            accepted += 1;
        }
    }
}

fn measure(key: &str, spec: Arc<JoinSpec>, draws: usize, reps: usize) -> Measurement {
    // Prepare: count DP + arena builds, best-of-reps wall time.
    let mut prepare = std::time::Duration::MAX;
    let mut sampler = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        sampler = Some(ExactWeightSampler::new(spec.clone()).expect("acyclic spec"));
        prepare = prepare.min(start.elapsed());
    }
    let sampler = sampler.unwrap();
    let artifacts = sampler.artifacts();
    let arena_bytes = artifacts.root_arena.memory_bytes()
        + artifacts
            .arenas
            .iter()
            .flatten()
            .map(suj_stats::AliasArena::memory_bytes)
            .sum::<usize>();

    let mut rng = SujRng::seed_from_u64(42);
    let mut out = Vec::new();

    // Warm-up faults in the indexes and sizes the scratch.
    sampler.sample_batch(draws.min(500), u64::MAX, &mut rng, &mut out);

    // Best-of-reps: the minimum is the load-insensitive statistic
    // (same convention as `hot_path`).
    let mut cascade = std::time::Duration::MAX;
    for _ in 0..reps.max(1) {
        out.clear();
        let start = Instant::now();
        sampler.sample_batch(draws, u64::MAX, &mut rng, &mut out);
        cascade = cascade.min(start.elapsed());
    }

    linear_batch(&sampler, draws.min(500), &mut rng, &mut out);
    let mut linear = std::time::Duration::MAX;
    for _ in 0..reps.max(1) {
        out.clear();
        let start = Instant::now();
        linear_batch(&sampler, draws, &mut rng, &mut out);
        linear = linear.min(start.elapsed());
    }

    Measurement {
        key: key.to_string(),
        cascade_dps: draws as f64 / cascade.as_secs_f64(),
        linear_dps: draws as f64 / linear.as_secs_f64(),
        prepare_ms: prepare.as_secs_f64() * 1e3,
        resident_bytes: sampler.memory_bytes(),
        arena_bytes,
    }
}

/// The high-fanout chain `r(a,b) ⋈ s(b,c) ⋈ t(c,d)`: both join
/// attributes draw their values from Zipf(1.2), so a handful of hot
/// keys own most of the postings — the Zipf-hot rows are also the
/// heavy ones, so the linear scan's expected walk is size-biased
/// toward the longest lists.
fn zipf_hot_spec() -> Arc<JoinSpec> {
    let mut rng = SujRng::seed_from_u64(7);
    let b_keys = Zipf::new(1_000, 1.2).unwrap();
    let c_keys = Zipf::new(500, 1.2).unwrap();

    let int_rows = |rows: Vec<(i64, i64)>| {
        rows.into_iter()
            .map(|(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
            .collect::<Vec<_>>()
    };
    let r = int_rows(
        (0..2_000)
            .map(|i| (i, b_keys.draw(&mut rng) as i64))
            .collect(),
    );
    let s = int_rows(
        (0..50_000)
            .map(|_| (b_keys.draw(&mut rng) as i64, c_keys.draw(&mut rng) as i64))
            .collect(),
    );
    let t = int_rows(
        (0..2_000)
            .map(|i| (c_keys.draw(&mut rng) as i64, i))
            .collect(),
    );

    let rel = |name: &str, attrs: [&str; 2], rows: Vec<Tuple>| {
        Arc::new(Relation::new(name, Schema::new(attrs).unwrap(), rows).unwrap())
    };
    Arc::new(
        JoinSpec::chain(
            "zipf_hot",
            vec![
                rel("r", ["a", "b"], r),
                rel("s", ["b", "c"], s),
                rel("t", ["c", "d"], t),
            ],
        )
        .unwrap(),
    )
}

fn write_json(measurements: &[Measurement]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    let mut out = String::from("{\n  \"pr\": 10,\n  \"bench\": \"alias_path\",\n");
    out.push_str(
        "  \"config\": \"ExactWeightSampler sample_batch (alias cascade) vs \
         sample_rows_linear (postings scan), shared count tables\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cascade_draws_per_sec\": {:.0}, \
             \"linear_draws_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"prepare_ms\": {:.3}, \"resident_bytes\": {}, \"arena_bytes\": {}}}",
            m.key,
            m.cascade_dps,
            m.linear_dps,
            m.speedup(),
            m.prepare_ms,
            m.resident_bytes,
            m.arena_bytes
        ));
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_10.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (draws, reps) = if smoke { (2_000, 1) } else { (200_000, 3) };

    let opts = UqOptions::new(2, 42, 0.2);
    let mut specs: Vec<(String, Arc<JoinSpec>)> = ["uq1", "uq2", "uq3"]
        .iter()
        .map(|name| {
            let w = build_workload(name, &opts).expect("workload");
            (format!("{name}/join0"), w.join(0).clone())
        })
        .collect();
    specs.push(("zipf_hot".into(), zipf_hot_spec()));

    let mut table = FigureTable::new(
        "Alias cascade — exact-weight draw throughput vs linear scan",
        &[
            "workload",
            "cascade/s",
            "linear/s",
            "speedup",
            "prep",
            "resident",
            "arenas",
        ],
    );
    let mut measurements = Vec::new();
    for (key, spec) in specs {
        let m = measure(&key, spec, draws, reps);
        table.push_row(vec![
            m.key.clone(),
            format!("{:.0}", m.cascade_dps),
            format!("{:.0}", m.linear_dps),
            format!("{:.2}x", m.speedup()),
            format!("{:.2}ms", m.prepare_ms),
            format!("{}B", m.resident_bytes),
            format!("{}B", m.arena_bytes),
        ]);
        measurements.push(m);
    }
    println!("{table}");

    if smoke {
        // CI smoke: numbers are meaningless at this draw count on
        // shared hardware, but the *structural* claim — O(1) alias
        // lookups never lose to a size-biased postings scan on
        // Zipf-hot fanout — must hold at any scale.
        assert!(measurements.iter().all(|m| m.cascade_dps > 0.0));
        let hot = measurements
            .iter()
            .find(|m| m.key == "zipf_hot")
            .expect("zipf_hot measured");
        assert!(
            hot.cascade_dps >= hot.linear_dps,
            "cascade ({:.0}/s) must not lose to the linear scan ({:.0}/s) on high fanout",
            hot.cascade_dps,
            hot.linear_dps
        );
        println!("smoke mode: skipping BENCH_10.json");
        return;
    }
    write_json(&measurements);
}
