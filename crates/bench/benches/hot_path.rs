//! Hot-path throughput: per-draw cost of the union samplers on the
//! §9-style TPC-H union workloads.
//!
//! Measures steady-state draws/sec, acceptance ratio, and p50/p99
//! per-draw latency (from [`RunReport`]'s latency histogram) for
//! Algorithm 1 under the two §9 estimator configurations whose inner
//! loops stress the per-attempt path differently:
//!
//! * `hist+EW` — exact weights: no join-subroutine rejection, so the
//!   measurement isolates walk + cover-check cost per accepted draw.
//! * `hist+EO` — extended-Olken weights: the subroutine rejects at rate
//!   `1 − |J|/bound`, so the measurement is dominated by *rejected*
//!   attempts — exactly the path the dictionary-encoded CSR indexes
//!   make allocation-free.
//!
//! Full runs append a machine-readable `BENCH_4.json` at the workspace
//! root (per-workload draws/sec, acceptance, latency percentiles, and
//! speedup vs. the recorded pre-PR baseline) so later PRs have a perf
//! trajectory to compare against. `--test` (the CI smoke mode) runs a
//! reduced draw count and skips the JSON write and baseline
//! comparison — wall-clock assertions do not belong in shared CI.

use std::sync::Arc;
use std::time::Instant;
use suj_bench::{build_set_union_sampler, build_workload, EstimatorKind, FigureTable, UqOptions};
use suj_core::UnionSampler;
use suj_join::weights::build_sampler;
use suj_join::WeightKind;
use suj_stats::SujRng;

/// Pre-PR baseline draws/sec, measured on the development container at
/// commit a5c04df (Box<[Value]>-keyed postings, per-walk tuple
/// materialization) with the same workloads, seeds, and draw counts as
/// the full run below. Used only to report the speedup column; the
/// `--test` smoke mode never compares wall-clock numbers.
const PRE_PR_BASELINE: &[(&str, f64)] = &[
    ("uq1/hist+EW", 831_381.0),
    ("uq1/hist+EO", 233_333.0),
    ("uq2/hist+EW", 777_022.0),
    ("uq2/hist+EO", 214_138.0),
    ("uq3/hist+EW", 1_070_191.0),
    ("uq3/hist+EO", 566_706.0),
];

struct Measurement {
    key: String,
    draws_per_sec: f64,
    acceptance: f64,
    p50_ns: u128,
    p99_ns: u128,
    baseline_draws_per_sec: Option<f64>,
}

impl Measurement {
    fn speedup(&self) -> Option<f64> {
        self.baseline_draws_per_sec
            .filter(|b| b.is_finite() && *b > 0.0)
            .map(|b| self.draws_per_sec / b)
    }
}

fn measure(
    workload: &str,
    kind: EstimatorKind,
    draws: usize,
    reps: usize,
    seed: u64,
) -> Measurement {
    let opts = UqOptions::new(2, 42, 0.2);
    let w = Arc::new(build_workload(workload, &opts).expect("workload"));
    let mut sampler = build_set_union_sampler(w, kind, seed).expect("sampler");
    let mut rng = SujRng::seed_from_u64(seed);

    // Warm-up batch: fills cover records and faults in the indexes.
    sampler
        .sample(draws.min(500), &mut rng)
        .expect("warm-up batch");

    // Best-of-reps: load spikes from concurrently running binaries hit
    // single measurements hard; the minimum time is the stable
    // statistic (same convention as `best_serve_time`). The report
    // delta spans all reps — acceptance and latency shape are
    // load-insensitive.
    let before = sampler.report().clone();
    let mut elapsed = std::time::Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        sampler.sample(draws, &mut rng).expect("timed batch");
        elapsed = elapsed.min(start.elapsed());
    }
    let delta = sampler.report().delta_since(&before);

    let key = format!("{workload}/{}", kind.label());
    let baseline = PRE_PR_BASELINE
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v);
    Measurement {
        key,
        draws_per_sec: draws as f64 / elapsed.as_secs_f64(),
        acceptance: delta.acceptance_ratio(),
        p50_ns: delta.draw_latency.p50().map_or(0, |d| d.as_nanos()),
        p99_ns: delta.draw_latency.p99().map_or(0, |d| d.as_nanos()),
        baseline_draws_per_sec: baseline,
    }
}

/// Join-level batched throughput: `JoinSampler::sample_batch` on one
/// workload join, per weight instantiation (no pre-PR baseline — the
/// entry point is new in this PR).
fn measure_join_batch(workload: &str, kind: WeightKind, draws: usize, reps: usize) -> Measurement {
    let opts = UqOptions::new(2, 42, 0.2);
    let w = build_workload(workload, &opts).expect("workload");
    let sampler = build_sampler(w.join(0).clone(), kind).expect("join sampler");
    let mut rng = SujRng::seed_from_u64(42);
    let mut out = Vec::new();
    sampler.sample_batch(draws.min(500), u64::MAX, &mut rng, &mut out);

    let mut elapsed = std::time::Duration::MAX;
    let mut attempts = 0u64;
    for _ in 0..reps.max(1) {
        out.clear();
        let start = Instant::now();
        attempts = sampler.sample_batch(draws, u64::MAX, &mut rng, &mut out);
        elapsed = elapsed.min(start.elapsed());
    }
    Measurement {
        key: format!("{workload}/join-batch/{kind:?}"),
        draws_per_sec: draws as f64 / elapsed.as_secs_f64(),
        acceptance: out.len() as f64 / attempts.max(1) as f64,
        p50_ns: 0,
        p99_ns: 0,
        baseline_draws_per_sec: None,
    }
}

fn write_json(measurements: &[Measurement]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    let mut out = String::from("{\n  \"pr\": 4,\n  \"bench\": \"hot_path\",\n");
    out.push_str("  \"config\": \"SetUnionSampler (Algorithm 1), scale_units=2, overlap=0.2\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"draws_per_sec\": {:.0}, \"acceptance\": {:.4}, \
             \"draw_p50_ns\": {}, \"draw_p99_ns\": {}",
            m.key, m.draws_per_sec, m.acceptance, m.p50_ns, m.p99_ns
        ));
        if let Some(b) = m.baseline_draws_per_sec.filter(|b| b.is_finite()) {
            out.push_str(&format!(
                ", \"baseline_draws_per_sec\": {:.0}, \"speedup\": {:.2}",
                b,
                m.speedup().unwrap_or(0.0)
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_4.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (draws, reps) = if smoke { (1_000, 1) } else { (100_000, 3) };

    let mut table = FigureTable::new(
        "Hot path — union-sampler draw throughput",
        &["config", "draws/s", "accept", "p50", "p99", "vs pre-PR"],
    );
    let mut measurements = Vec::new();
    for workload in ["uq1", "uq2", "uq3"] {
        for kind in [EstimatorKind::HistogramEw, EstimatorKind::HistogramEo] {
            let m = measure(workload, kind, draws, reps, 42);
            table.push_row(vec![
                m.key.clone(),
                format!("{:.0}", m.draws_per_sec),
                format!("{:.3}", m.acceptance),
                format!("{}ns", m.p50_ns),
                format!("{}ns", m.p99_ns),
                m.speedup()
                    .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
            ]);
            measurements.push(m);
        }
    }
    // Join-level batched draws (the `sample_batch` entry point).
    for kind in [WeightKind::Exact, WeightKind::ExtendedOlken] {
        let m = measure_join_batch("uq1", kind, draws, reps);
        table.push_row(vec![
            m.key.clone(),
            format!("{:.0}", m.draws_per_sec),
            format!("{:.3}", m.acceptance),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        measurements.push(m);
    }
    println!("{table}");

    if smoke {
        // CI smoke: the path ran end to end; numbers are meaningless at
        // this draw count on shared hardware, so nothing is recorded.
        assert!(measurements.iter().all(|m| m.draws_per_sec > 0.0));
        println!("smoke mode: skipping BENCH_4.json");
        return;
    }
    write_json(&measurements);
}
