//! Concurrent serving: throughput scaling across worker counts, with
//! the cross-worker determinism contract asserted before timing.
//!
//! For each set-union workload (uq1–uq3), the bench first proves that a
//! 4-worker [`SamplingService`] run is bit-identical per request id to
//! a 1-worker run under the same root seed, then times the same request
//! batch at 1 / 2 / 4 workers. On hosts with ≥4 cores the 4-worker
//! configuration must reach ≥2× single-worker throughput (hardware-
//! gated: a 1-core host cannot exhibit thread speedup on a CPU-bound
//! load, and the gate prints why it skipped).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use suj_bench::*;
use suj_core::PreparedQuery;

const REQUESTS: u64 = 48;
const SAMPLES_PER_REQUEST: usize = 128;

fn prepared_for(name: &str) -> Arc<PreparedQuery> {
    let opts = UqOptions::new(1, 42, 0.2);
    let workload = Arc::new(build_workload(name, &opts).expect("workload"));
    Arc::new(PreparedQuery::auto(workload).expect("prepare"))
}

fn bench_concurrent_serve(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("concurrent_serve");
    group.sample_size(10);
    for name in ["uq1", "uq2", "uq3"] {
        let prepared = prepared_for(name);

        // --- Determinism gate (always enforced). ---
        let (one, _, _) = serve_prepared(&prepared, 1, REQUESTS, SAMPLES_PER_REQUEST, 42);
        let (four, _, stats) = serve_prepared(&prepared, 4, REQUESTS, SAMPLES_PER_REQUEST, 42);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.tuples, b.tuples,
                "{name}: request {} diverged between 1 and 4 workers",
                a.id
            );
        }
        println!("  {name}: determinism ok across worker counts ({stats})");

        // --- Scaling gate (hardware-permitting). ---
        let t1 = best_serve_time(&prepared, 1, REQUESTS, SAMPLES_PER_REQUEST, 3);
        let t4 = best_serve_time(&prepared, 4, REQUESTS, SAMPLES_PER_REQUEST, 3);
        let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(f64::EPSILON);
        println!("  {name}: 1 worker {t1:?}, 4 workers {t4:?} → {speedup:.2}x");
        if cores >= 4 {
            assert!(
                speedup >= 2.0,
                "{name}: 4-worker speedup {speedup:.2}x stayed below 2x on a {cores}-core host"
            );
        } else {
            println!("  {name}: scaling assertion skipped ({cores} core(s) available)");
        }

        // --- Timed panels. ---
        for workers in [1usize, 2, 4] {
            let prepared = prepared.clone();
            group.bench_function(format!("{name}/workers={workers}"), move |b| {
                b.iter(|| serve_prepared(&prepared, workers, REQUESTS, SAMPLES_PER_REQUEST, 7))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_serve);
criterion_main!(benches);
