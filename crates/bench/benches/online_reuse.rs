//! Criterion microbench: Algorithm 2 online sampling (Fig. 6 kernel) —
//! sample reuse on vs off, assembled through `SamplerBuilder`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use suj_bench::{build_workload, UqOptions};
use suj_core::prelude::*;
use suj_core::walk_estimator::WalkEstimatorConfig;
use suj_stats::SujRng;

fn bench_online(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let w = Arc::new(build_workload("uq1", &opts).expect("workload"));

    let mut group = c.benchmark_group("online_reuse");
    group.sample_size(10);

    for (label, reuse) in [("with_reuse", true), ("without_reuse", false)] {
        let cfg = OnlineConfig {
            reuse,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 500,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sampler = SamplerBuilder::for_workload(w.clone())
            .strategy(Strategy::Online(cfg))
            .build()
            .expect("sampler");
        group.bench_function(format!("{label}/N=200"), |b| {
            let mut rng = SujRng::seed_from_u64(9);
            b.iter(|| black_box(sampler.sample(200, &mut rng).expect("run").0.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
