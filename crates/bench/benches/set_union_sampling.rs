//! Criterion microbench: Algorithm 1 set-union sampling (Fig. 5
//! kernel) — EW vs EO weight instantiations across the three workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use suj_bench::{build_workload, UqOptions};
use suj_core::algorithm1::UnionSamplerConfig;
use suj_core::prelude::*;
use suj_join::WeightKind;
use suj_stats::SujRng;

fn bench_set_union(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let mut group = c.benchmark_group("set_union_sampling");
    group.sample_size(10);

    for name in ["uq1", "uq2", "uq3"] {
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        let exact = full_join_union(&w).expect("ground truth");
        for (label, weights) in [("EW", WeightKind::Exact), ("EO", WeightKind::ExtendedOlken)] {
            let sampler = SetUnionSampler::new(
                w.clone(),
                &exact.overlap,
                UnionSamplerConfig {
                    weights,
                    policy: CoverPolicy::Record,
                    strategy: CoverStrategy::AsGiven,
                    ..Default::default()
                },
            )
            .expect("sampler");
            group.bench_function(format!("{name}/{label}/N=200"), |b| {
                let mut rng = SujRng::seed_from_u64(5);
                b.iter(|| black_box(sampler.sample(200, &mut rng).expect("run").0.len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_set_union);
criterion_main!(benches);
