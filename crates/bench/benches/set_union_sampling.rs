//! Criterion microbench: Algorithm 1 set-union sampling (Fig. 5
//! kernel) — EW vs EO weight instantiations across the three workloads,
//! plus batch-vs-stream consumption of the same builder-assembled
//! sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use suj_bench::{build_workload, UqOptions};
use suj_core::prelude::*;
use suj_join::WeightKind;
use suj_stats::SujRng;

fn bench_set_union(c: &mut Criterion) {
    let opts = UqOptions::new(2, 42, 0.2);
    let mut group = c.benchmark_group("set_union_sampling");
    group.sample_size(10);

    for name in ["uq1", "uq2", "uq3"] {
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        for (label, weights) in [("EW", WeightKind::Exact), ("EO", WeightKind::ExtendedOlken)] {
            let mut sampler = SamplerBuilder::for_workload(w.clone())
                .estimator(Estimator::Exact)
                .weights(weights)
                .cover_policy(CoverPolicy::Record)
                .build()
                .expect("sampler");
            group.bench_function(format!("{name}/{label}/N=200"), |b| {
                let mut rng = SujRng::seed_from_u64(5);
                b.iter(|| black_box(sampler.sample(200, &mut rng).expect("run").0.len()))
            });
        }
    }

    // Batch vs stream overhead on one configuration. Note: samplers
    // are stateful now, so iterations beyond the first measure the
    // steady-state (warmed-record) kernel — the regime persistent /
    // streaming deployments run in.
    let w = Arc::new(build_workload("uq2", &opts).expect("workload"));
    let mut sampler = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::MembershipOracle)
        .build()
        .expect("sampler");
    group.bench_function("uq2/stream/N=200", |b| {
        let mut rng = SujRng::seed_from_u64(5);
        b.iter(|| {
            let mut n = 0usize;
            for item in SampleStream::over(&mut sampler, &mut rng).take(200) {
                black_box(item.expect("stream draw"));
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_set_union);
criterion_main!(benches);
