//! Cyclic-path throughput: per-draw cost of the AGM box-splitting
//! sampler on triangle queries over random graphs.
//!
//! The box sampler's acceptance rate is *exactly* `OUT/AGM` in
//! expectation (DESIGN.md, cyclic-joins section), so alongside
//! draws/sec this bench records both the measured acceptance and the
//! theoretical `OUT/AGM` ratio — the two must track each other, and
//! the gap is the sanity check that the descent's branch probabilities
//! telescope correctly at scale, not just on the unit-test fixtures.
//!
//! Full runs append a machine-readable `BENCH_8.json` at the workspace
//! root (per-scale draws/sec, measured acceptance, theoretical
//! `OUT/AGM`, `OUT`, and the AGM bound). `--test` (the CI smoke mode)
//! runs a reduced draw count, asserts measured acceptance brackets the
//! theoretical rate, and skips the JSON write — wall-clock assertions
//! do not belong in shared CI.

use std::sync::Arc;
use std::time::Instant;
use suj_bench::FigureTable;
use suj_join::exec::execute;
use suj_join::{CyclicJoinSampler, JoinSampler, JoinSpec};
use suj_stats::SujRng;
use suj_storage::{Relation, Schema, Tuple, Value};

/// A triangle query `x(a,b) ⋈ y(b,c) ⋈ z(c,a)` over one symmetric
/// random edge list on `vertices` nodes, replicated under the three
/// attribute renamings that close the cycle.
fn triangle_spec(vertices: i64, edge_prob: f64, seed: u64) -> Arc<JoinSpec> {
    let mut rng = SujRng::seed_from_u64(seed);
    let mut edges: Vec<(i64, i64)> = Vec::new();
    for u in 0..vertices {
        for v in (u + 1)..vertices {
            if rng.bernoulli(edge_prob) {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
    }
    let rel = |name: &str, attrs: [&str; 2]| {
        let schema = Schema::new(attrs).expect("schema");
        let tuples = edges
            .iter()
            .map(|&(u, v)| Tuple::new(vec![Value::int(u), Value::int(v)]))
            .collect();
        Arc::new(Relation::new(name, schema, tuples).expect("relation"))
    };
    Arc::new(
        JoinSpec::natural(
            "triangles",
            vec![
                rel("x", ["a", "b"]),
                rel("y", ["b", "c"]),
                rel("z", ["c", "a"]),
            ],
        )
        .expect("triangle spec"),
    )
}

struct Measurement {
    key: String,
    edges: usize,
    out: usize,
    agm: f64,
    draws_per_sec: f64,
    acceptance: f64,
}

impl Measurement {
    fn theoretical_acceptance(&self) -> f64 {
        if self.agm > 0.0 {
            self.out as f64 / self.agm
        } else {
            0.0
        }
    }
}

fn measure(vertices: i64, edge_prob: f64, draws: usize, reps: usize) -> Measurement {
    let spec = triangle_spec(vertices, edge_prob, 2023);
    let edges = spec.relations()[0].len();
    let out = execute(&spec).tuples().len();
    let sampler = CyclicJoinSampler::new(spec).expect("cyclic sampler");
    let mut rng = SujRng::seed_from_u64(42);
    let mut tuples = Vec::new();
    sampler.sample_batch(draws.min(500), u64::MAX, &mut rng, &mut tuples);

    // Best-of-reps wall clock; acceptance spans all reps (it is
    // load-insensitive, so the wider sample only tightens it).
    let mut elapsed = std::time::Duration::MAX;
    let mut attempts = 0u64;
    let mut accepted = 0usize;
    for _ in 0..reps.max(1) {
        tuples.clear();
        let start = Instant::now();
        attempts += sampler.sample_batch(draws, u64::MAX, &mut rng, &mut tuples);
        elapsed = elapsed.min(start.elapsed());
        accepted += tuples.len();
    }
    Measurement {
        key: format!("triangle/v={vertices}"),
        edges,
        out,
        agm: sampler.agm_root(),
        draws_per_sec: draws as f64 / elapsed.as_secs_f64(),
        acceptance: accepted as f64 / attempts.max(1) as f64,
    }
}

fn write_json(measurements: &[Measurement]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    let mut out = String::from("{\n  \"pr\": 8,\n  \"bench\": \"cyclic_path\",\n");
    out.push_str(
        "  \"config\": \"CyclicJoinSampler (AGM box splitting), symmetric random-graph triangles\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"edge_rows\": {}, \"out\": {}, \"agm_bound\": {:.1}, \
             \"draws_per_sec\": {:.0}, \"acceptance\": {:.5}, \"out_over_agm\": {:.5}}}",
            m.key,
            m.edges,
            m.out,
            m.agm,
            m.draws_per_sec,
            m.acceptance,
            m.theoretical_acceptance()
        ));
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_8.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (draws, reps) = if smoke { (1_000, 1) } else { (50_000, 3) };

    let mut table = FigureTable::new(
        "Cyclic path — AGM box-sampler draw throughput",
        &[
            "config", "edges", "OUT", "AGM", "draws/s", "accept", "OUT/AGM",
        ],
    );
    let mut measurements = Vec::new();
    for (vertices, edge_prob) in [(64i64, 0.15), (128, 0.08)] {
        let m = measure(vertices, edge_prob, draws, reps);
        table.push_row(vec![
            m.key.clone(),
            format!("{}", m.edges),
            format!("{}", m.out),
            format!("{:.0}", m.agm),
            format!("{:.0}", m.draws_per_sec),
            format!("{:.4}", m.acceptance),
            format!("{:.4}", m.theoretical_acceptance()),
        ]);
        measurements.push(m);
    }
    println!("{table}");

    // The acceptance rate is OUT/AGM by construction; a drift beyond
    // sampling noise means the descent's branch probabilities stopped
    // telescoping. Checked in smoke mode too (it is seed-stable).
    for m in &measurements {
        let theory = m.theoretical_acceptance();
        assert!(
            m.acceptance > 0.25 * theory && m.acceptance < 4.0 * theory,
            "{}: measured acceptance {:.5} strayed from OUT/AGM {:.5}",
            m.key,
            m.acceptance,
            theory
        );
    }

    if smoke {
        println!("smoke mode: skipping BENCH_8.json");
        return;
    }
    write_json(&measurements);
}
