//! Regenerates Figure 6 of the paper (§9.3): online union sampling with
//! sample reuse — total time with vs without reuse, and per-sample time
//! in the regular vs reuse phases.
//!
//! Usage: `fig6 [reuse|per-sample|all] [--scale U] [--seed S]`

use std::sync::Arc;
use suj_bench::*;
use suj_core::algorithm2::{OnlineConfig, OnlineUnionSampler};
use suj_core::prelude::*;
use suj_core::walk_estimator::WalkEstimatorConfig;
use suj_stats::SujRng;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn online_config(reuse: bool) -> OnlineConfig {
    OnlineConfig {
        reuse,
        // Bound reuse bursts so the figure resolves the pool-exhaustion
        // slope instead of serving all demand in one burst (see the
        // `reuse_burst_cap` docs; the default keeps §7's semantics).
        reuse_burst_cap: 2,
        warmup: WalkEstimatorConfig {
            max_walks_per_join: 300,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Fig 6a: total sampling time with and without reuse.
fn reuse_panel(scale: usize, seed: u64) {
    for name in ["uq1", "uq2", "uq3"] {
        let opts = UqOptions::new(scale, seed, 0.2);
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        let mut table = FigureTable::new(
            format!(
                "Fig 6a — online sampling time, with vs without reuse ({})",
                name.to_uppercase()
            ),
            &["N", "with_reuse_ms", "without_reuse_ms", "reuse_hits"],
        );
        for n in [100usize, 200, 400, 800] {
            let mut rng_a = SujRng::seed_from_u64(seed);
            let mut with =
                OnlineUnionSampler::new(w.clone(), online_config(true), CoverStrategy::AsGiven);
            let (_, ra) = with.sample(n, &mut rng_a).expect("run");

            let mut rng_b = SujRng::seed_from_u64(seed);
            let mut without =
                OnlineUnionSampler::new(w.clone(), online_config(false), CoverStrategy::AsGiven);
            let (_, rb) = without.sample(n, &mut rng_b).expect("run");

            table.push_row(vec![
                n.to_string(),
                ms(ra.total_time() - ra.warmup_time),
                ms(rb.total_time() - rb.warmup_time),
                ra.reuse_accepted.to_string(),
            ]);
        }
        println!("{table}");
    }
}

/// Fig 6b: per-sample time in the regular vs reuse phase.
fn per_sample_panel(scale: usize, seed: u64) {
    let mut table = FigureTable::new(
        "Fig 6b — time per accepted sample: regular vs reuse phase",
        &["workload", "regular_us", "reuse_us"],
    );
    for name in ["uq1", "uq2", "uq3"] {
        let opts = UqOptions::new(scale, seed, 0.2);
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        // Small pools + large N so BOTH phases run: the pool serves the
        // first ~2×successes samples, the regular walk phase the rest.
        let cfg = OnlineConfig {
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 100,
                min_walks_per_join: 50,
                ..Default::default()
            },
            ..online_config(true)
        };
        let mut sampler = OnlineUnionSampler::new(w, cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(seed);
        let (_, report) = sampler.sample(2000, &mut rng).expect("run");
        let regular = report
            .time_per_accepted()
            .map(|d| format!("{:.2}", d.as_secs_f64() * 1e6))
            .unwrap_or_else(|| "-".into());
        let reuse = report
            .time_per_reuse_accepted()
            .map(|d| format!("{:.2}", d.as_secs_f64() * 1e6))
            .unwrap_or_else(|| "-".into());
        table.push_row(vec![name.to_uppercase(), regular, reuse]);
    }
    println!("{table}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panel = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_flag(&args, "--scale", 4) as usize;
    let seed = parse_flag(&args, "--seed", 42);

    match panel {
        "reuse" => reuse_panel(scale, seed),
        "per-sample" => per_sample_panel(scale, seed),
        "all" => {
            reuse_panel(scale, seed);
            per_sample_panel(scale, seed);
        }
        other => {
            eprintln!("unknown panel `{other}`; try reuse|per-sample|all");
            std::process::exit(2);
        }
    }
}
