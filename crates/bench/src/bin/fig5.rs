//! Regenerates Figure 5 of the paper (§9.1.2–§9.2): estimator accuracy
//! comparison, SetUnion sampling scalability (data scale and sample
//! count), and the time breakdown across estimation / accepted /
//! rejected answers.
//!
//! Usage: `fig5 [ratio-error|scale|samples|breakdown|all] [--scale U]
//!         [--seed S]`

use std::sync::Arc;
use suj_bench::*;
use suj_core::prelude::*;
use suj_stats::SujRng;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fig 5a: per-join ratio error — histogram+EO vs random-walk on UQ1.
fn ratio_error_panel(scale: usize, seed: u64) {
    let opts = UqOptions::new(scale, seed, 0.2);
    let w = build_workload("uq1", &opts).expect("workload");
    let exact = full_join_union(&w).expect("ground truth");

    let mut table = FigureTable::new(
        "Fig 5a — |J_i|/|U| ratio error per join on UQ1",
        &["join", "hist+EO", "rand-walk"],
    );
    let mut rng = SujRng::seed_from_u64(seed);
    let (hist_map, _) = estimate_overlaps(EstimatorKind::HistogramEo, &w, &mut rng).expect("hist");
    let (walk_map, _) = estimate_overlaps(EstimatorKind::RandomWalk, &w, &mut rng).expect("walk");
    let hist_errs = ratio_errors(&hist_map, &exact);
    let walk_errs = ratio_errors(&walk_map, &exact);
    for j in 0..w.n_joins() {
        table.push_row(vec![
            format!("J{}", j + 1),
            format!("{:.4}", hist_errs[j]),
            format!("{:.4}", walk_errs[j]),
        ]);
    }
    table.push_row(vec![
        "mean".into(),
        format!("{:.4}", mean(&hist_errs)),
        format!("{:.4}", mean(&walk_errs)),
    ]);
    println!("{table}");
}

/// Fig 5b: SetUnion sampling time vs data scale on UQ1.
fn scale_panel(seed: u64) {
    let mut table = FigureTable::new(
        "Fig 5b — SetUnion time vs data scale (UQ1, N=500)",
        &["scale_units", "hist+EO_ms", "hist+EW_ms", "rand-walk_ms"],
    );
    for scale in [1usize, 2, 4, 8] {
        let opts = UqOptions::new(scale, seed, 0.2);
        let w = Arc::new(build_workload("uq1", &opts).expect("workload"));
        let mut cells = vec![scale.to_string()];
        for kind in [
            EstimatorKind::HistogramEo,
            EstimatorKind::HistogramEw,
            EstimatorKind::RandomWalk,
        ] {
            let (report, _) = run_set_union(&w, kind, 500, seed).expect("run");
            cells.push(ms(report.total_time()));
        }
        table.push_row(cells);
    }
    println!("{table}");
}

/// Fig 5c–e: sampling time vs sample count on each workload.
fn samples_panel(scale: usize, seed: u64) {
    for (panel, name) in [("c", "uq1"), ("d", "uq2"), ("e", "uq3")] {
        let opts = UqOptions::new(scale, seed, 0.2);
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        let mut table = FigureTable::new(
            format!(
                "Fig 5{panel} — sampling time vs sample count ({})",
                name.to_uppercase()
            ),
            &["N", "hist+EO_ms", "hist+EW_ms", "rand-walk_ms"],
        );
        for n in [100usize, 200, 400, 800, 1600] {
            let mut cells = vec![n.to_string()];
            for kind in [
                EstimatorKind::HistogramEo,
                EstimatorKind::HistogramEw,
                EstimatorKind::RandomWalk,
            ] {
                let (report, _) = run_set_union(&w, kind, n, seed).expect("run");
                cells.push(ms(report.total_time() - report.warmup_time));
            }
            table.push_row(cells);
        }
        println!("{table}");
    }
}

/// Fig 5f–h: time breakdown (estimation / accepted / rejected).
fn breakdown_panel(scale: usize, seed: u64) {
    for (panel, name) in [("f", "uq1"), ("g", "uq2"), ("h", "uq3")] {
        let opts = UqOptions::new(scale, seed, 0.2);
        let w = Arc::new(build_workload(name, &opts).expect("workload"));
        let mut table = FigureTable::new(
            format!(
                "Fig 5{panel} — time breakdown at N=1000 ({})",
                name.to_uppercase()
            ),
            &[
                "config",
                "estimation_ms",
                "accepted_ms",
                "rejected_ms",
                "acceptance",
            ],
        );
        for kind in [
            EstimatorKind::HistogramEo,
            EstimatorKind::HistogramEw,
            EstimatorKind::RandomWalk,
        ] {
            let (report, warmup) = run_set_union(&w, kind, 1000, seed).expect("run");
            // The report itself records the resolved configuration, so
            // every row names what produced it.
            let config = report
                .config
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_else(|| kind.label().into());
            table.push_row(vec![
                config,
                ms(warmup),
                ms(report.accepted_time),
                ms(report.rejected_time),
                format!("{:.3}", report.acceptance_ratio()),
            ]);
        }
        println!("{table}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panel = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_flag(&args, "--scale", 4) as usize;
    let seed = parse_flag(&args, "--seed", 42);

    match panel {
        "ratio-error" => ratio_error_panel(scale, seed),
        "scale" => scale_panel(seed),
        "samples" => samples_panel(scale, seed),
        "breakdown" => breakdown_panel(scale, seed),
        "all" => {
            ratio_error_panel(scale, seed);
            scale_panel(seed);
            samples_panel(scale, seed);
            breakdown_panel(scale, seed);
        }
        other => {
            eprintln!("unknown panel `{other}`; try ratio-error|scale|samples|breakdown|all");
            std::process::exit(2);
        }
    }
}
