//! Ablation studies called out in DESIGN.md, beyond the paper's own
//! figures:
//!
//! 1. `cover-policy` — paper Record (revision) vs MembershipOracle vs
//!    Bernoulli union trick: rejection/revision profiles and wall time.
//! 2. `degree-mode` — Theorem 4 multipliers from max vs average degrees
//!    (§5.1's refinement): bound tightness on every workload.
//! 3. `template` — optimal template vs its reverse vs an adversarial
//!    shuffle (§8.1, Example 7): overlap-bound inflation.
//! 4. `phi` — Algorithm 2's update cadence: updates performed,
//!    backtracking drops, wall time.
//! 5. `cyclic` — the UQ4 extension workload: spanning-tree sampling
//!    overhead (consistency rejections) and estimator quality.
//! 6. `skew` — Zipf-skewed foreign keys (the paper's named future-work
//!    direction): estimator error and EO efficiency vs skew.
//!
//! Usage: `ablations [cover-policy|degree-mode|template|phi|cyclic|skew|all]
//!         [--scale U] [--seed S]`

use std::sync::Arc;
use suj_bench::*;
use suj_core::algorithm1::UnionSamplerConfig;
use suj_core::algorithm2::{OnlineConfig, OnlineUnionSampler};
use suj_core::prelude::*;
use suj_core::walk_estimator::WalkEstimatorConfig;
use suj_join::template::{build_template, split_join, Template};
use suj_join::WeightKind;
use suj_stats::SujRng;
use suj_storage::{Relation, Schema, Tuple, Value};

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Ablation 1: cover policy comparison on the high-overlap workload.
fn cover_policy_panel(scale: usize, seed: u64) {
    let opts = UqOptions::new(scale, seed, 0.2);
    let w = Arc::new(build_workload("uq2", &opts).expect("uq2"));
    let exact = full_join_union(&w).expect("truth");
    let n = 2000;

    let mut table = FigureTable::new(
        "Ablation — cover policy (UQ2, exact parameters, N=2000)",
        &[
            "policy",
            "time_ms",
            "rejected_cover",
            "revised",
            "acceptance",
        ],
    );

    for (label, policy) in [
        ("record (paper)", CoverPolicy::Record),
        ("oracle", CoverPolicy::MembershipOracle),
    ] {
        let mut sampler = SetUnionSampler::new(
            w.clone(),
            &exact.overlap,
            UnionSamplerConfig {
                policy,
                ..Default::default()
            },
        )
        .expect("sampler");
        let mut rng = SujRng::seed_from_u64(seed);
        let ((_, report), t) = timed(|| sampler.sample(n, &mut rng).expect("run"));
        table.push_row(vec![
            label.into(),
            ms(t),
            report.rejected_cover.to_string(),
            report.revised.to_string(),
            format!("{:.3}", report.acceptance_ratio()),
        ]);
    }

    let sizes: Vec<f64> = (0..w.n_joins())
        .map(|j| exact.join_size(j) as f64)
        .collect();
    let mut bern = BernoulliUnionSampler::new(
        w.clone(),
        &sizes,
        exact.union_size() as f64,
        WeightKind::Exact,
    )
    .expect("bernoulli");
    let mut rng = SujRng::seed_from_u64(seed);
    let ((_, report), t) = timed(|| bern.sample(n, &mut rng).expect("run"));
    table.push_row(vec![
        "bernoulli".into(),
        ms(t),
        report.rejected_cover.to_string(),
        "0".into(),
        format!("{:.3}", report.acceptance_ratio()),
    ]);
    println!("{table}");
}

/// A three-relation chain workload with heavy degree skew (value `v`
/// of the join attribute has degree ~v), where max- and avg-degree
/// multipliers genuinely differ.
fn skewed_workload(seed: u64) -> UnionWorkload {
    let mut rng = SujRng::seed_from_u64(seed);
    let mk_join = |idx: usize, rng: &mut SujRng| {
        let mut r_rows = Vec::new();
        for a in 0..60i64 {
            r_rows.push(Tuple::new(vec![
                Value::int(a + idx as i64 * 7),
                Value::int(rng.range_i64(0, 8)),
            ]));
        }
        // Skew: b = v appears ~v+1 times in s.
        let mut s_rows = Vec::new();
        let mut c = 0i64;
        for b in 0..8i64 {
            for _ in 0..=b {
                s_rows.push(Tuple::new(vec![Value::int(b), Value::int(c)]));
                c += 1;
            }
        }
        let mut t_rows = Vec::new();
        for cc in 0..c {
            t_rows.push(Tuple::new(vec![Value::int(cc), Value::int(cc % 5)]));
        }
        let rel = |n: String, attrs: [&str; 2], rows: Vec<Tuple>| {
            Arc::new(Relation::new(n, Schema::new(attrs).unwrap(), rows).unwrap())
        };
        suj_join::JoinSpec::chain(
            format!("skew{idx}"),
            vec![
                rel(format!("r{idx}"), ["a", "b"], r_rows),
                rel(format!("s{idx}"), ["b", "c"], s_rows),
                rel(format!("t{idx}"), ["c", "d"], t_rows),
            ],
        )
        .unwrap()
    };
    let j0 = mk_join(0, &mut rng);
    let j1 = mk_join(1, &mut rng);
    UnionWorkload::new(vec![Arc::new(j0), Arc::new(j1)]).unwrap()
}

/// Ablation 2: Theorem 4 multipliers — max vs average degree.
fn degree_mode_panel(scale: usize, seed: u64) {
    let mut table = FigureTable::new(
        "Ablation — K(i) degree mode: bound on the all-join overlap",
        &[
            "workload",
            "truth",
            "max_bound",
            "avg_bound",
            "max_infl",
            "avg_infl",
        ],
    );
    let mut cases: Vec<(String, UnionWorkload)> = vec![("SKEWED".into(), skewed_workload(seed))];
    for name in ["uq1", "uq2", "uq3"] {
        let opts = UqOptions::new(scale, seed, 0.4);
        cases.push((
            name.to_uppercase(),
            build_workload(name, &opts).expect("workload"),
        ));
    }
    for (label, w) in cases {
        let exact = full_join_union(&w).expect("truth");
        let sizes = w.exact_join_sizes().expect("sizes");
        let all: Vec<usize> = (0..w.n_joins()).collect();
        let truth = exact.overlap.overlap(&all).max(1.0);
        let max_b = HistogramEstimator::new(&w, DegreeMode::Max, sizes.clone(), 0.0)
            .expect("est")
            .estimate_overlap(&all);
        let avg_b = HistogramEstimator::new(&w, DegreeMode::Avg, sizes, 0.0)
            .expect("est")
            .estimate_overlap(&all);
        table.push_row(vec![
            label,
            format!("{truth:.0}"),
            format!("{max_b:.0}"),
            format!("{avg_b:.0}"),
            format!("{:.2}x", max_b / truth),
            format!("{:.2}x", avg_b / truth),
        ]);
    }
    println!("{table}");
}

/// Raw (uncapped) Theorem 4 bound on the all-join overlap under a given
/// template — the quantity template selection actually controls (the
/// final estimate additionally caps at min |J_j|).
fn bound_under_template(w: &UnionWorkload, template: &Template) -> f64 {
    let sizes = w.exact_join_sizes().expect("sizes");
    let splits: Vec<_> = w
        .joins()
        .iter()
        .map(|j| split_join(j, template).expect("split"))
        .collect();
    // Replicate the Theorem 4 recurrence manually for the custom
    // template (HistogramEstimator always picks the optimal one).
    let chain_len = splits[0].relations.len();
    let cap = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    if chain_len < 2 {
        return cap;
    }
    let domain = &splits[0].relations[0].deg_y;
    let mut k: f64 = domain
        .values()
        .map(|v| {
            splits
                .iter()
                .map(|s| s.relations[0].deg_y.degree(v) * s.relations[1].deg_x.degree(v))
                .fold(f64::INFINITY, f64::min)
        })
        .filter(|m| *m > 0.0)
        .sum();
    for s in 1..chain_len - 1 {
        let mult = splits
            .iter()
            .map(|sp| {
                if sp.fake_links[s] {
                    1.0
                } else {
                    sp.relations[s + 1].deg_x.max_degree()
                }
            })
            .fold(f64::INFINITY, f64::min);
        k *= mult;
    }
    k
}

/// Ablation 3: template quality (Example 7's worst-case warning).
fn template_panel(scale: usize, seed: u64) {
    let opts = UqOptions::new(scale, seed, 0.4);
    let w = build_workload("uq3", &opts).expect("uq3");
    let exact = full_join_union(&w).expect("truth");
    let all: Vec<usize> = (0..w.n_joins()).collect();
    let truth = exact.overlap.overlap(&all).max(1.0);

    let specs: Vec<&suj_join::JoinSpec> = w.joins().iter().map(|j| j.as_ref()).collect();
    let optimal = build_template(&specs, 0.0).expect("template");
    // Note: reversing a chain template keeps the same adjacent pairs —
    // a genuinely bad template needs a real permutation that separates
    // same-relation attributes (Example 7's scenario).
    let mut bad_order = optimal.order.clone();
    let mut rng = SujRng::seed_from_u64(seed ^ 0xBAD);
    rng.shuffle(&mut bad_order);
    let shuffled = Template {
        order: bad_order,
        cost: f64::NAN,
    };
    // A second adversarial instance with a different seed.
    let mut worse_order = optimal.order.clone();
    let mut rng2 = SujRng::seed_from_u64(seed ^ 0xDEAD);
    rng2.shuffle(&mut worse_order);
    let shuffled2 = Template {
        order: worse_order,
        cost: f64::NAN,
    };

    let sizes = w.exact_join_sizes().expect("sizes");
    let cap = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut table = FigureTable::new(
        "Ablation — template choice on UQ3 (all-join overlap bound)",
        &["template", "cost", "raw_K", "capped", "raw_inflation"],
    );
    for (label, t) in [
        ("optimal (Held–Karp)", &optimal),
        ("random shuffle A", &shuffled),
        ("random shuffle B", &shuffled2),
    ] {
        let raw = bound_under_template(&w, t);
        let cost = if t.cost.is_nan() {
            "-".to_string()
        } else {
            format!("{:.1}", t.cost)
        };
        table.push_row(vec![
            label.into(),
            cost,
            format!("{raw:.3e}"),
            format!("{:.0}", raw.min(cap)),
            format!("{:.1}x", raw / truth),
        ]);
    }
    table.push_row(vec![
        "truth".into(),
        "-".into(),
        format!("{truth:.0}"),
        format!("{truth:.0}"),
        "1.0x".into(),
    ]);
    println!("{table}");
}

/// Ablation 4: Algorithm 2 update cadence φ.
fn phi_panel(scale: usize, seed: u64) {
    let opts = UqOptions::new(scale, seed, 0.2);
    let w = Arc::new(build_workload("uq1", &opts).expect("uq1"));
    let mut table = FigureTable::new(
        "Ablation — Algorithm 2 update cadence φ (UQ1, N=500, no warm-up)",
        &["phi", "updates", "backtrack_drops", "time_ms"],
    );
    for phi in [32u64, 128, 512, 2048] {
        let cfg = OnlineConfig {
            phi,
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 0,
                ..Default::default()
            },
            ci_threshold: 0.02,
            ..Default::default()
        };
        let mut sampler = OnlineUnionSampler::new(w.clone(), cfg, CoverStrategy::AsGiven);
        let mut rng = SujRng::seed_from_u64(seed);
        let ((_, report), t) = timed(|| sampler.sample(500, &mut rng).expect("run"));
        table.push_row(vec![
            phi.to_string(),
            report.update_rounds.to_string(),
            report.backtrack_dropped.to_string(),
            ms(t),
        ]);
    }
    println!("{table}");
}

/// Ablation 5: cyclic joins (UQ4) — the extension workload.
fn cyclic_panel(scale: usize, seed: u64) {
    let opts = UqOptions::new(scale, seed, 0.3);
    let w = Arc::new(uq4_cyclic(&opts).expect("uq4"));
    let exact = full_join_union(&w).expect("truth");

    let mut table = FigureTable::new(
        "Ablation — cyclic union workload UQ4 (bundle purchases)",
        &["metric", "value"],
    );
    table.push_row(vec!["|U| truth".into(), exact.union_size().to_string()]);

    // Estimator quality.
    let sizes = w.exact_join_sizes().expect("sizes");
    let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).expect("est");
    table.push_row(vec![
        "|U| histogram (Eq.1)".into(),
        format!("{:.0}", est.overlap_map().expect("map").union_size()),
    ]);
    let mut rng = SujRng::seed_from_u64(seed);
    let (walk_map, walk_t) =
        estimate_overlaps(EstimatorKind::RandomWalk, &w, &mut rng).expect("walk");
    table.push_row(vec![
        "|U| random-walk".into(),
        format!("{:.0} ({} ms)", walk_map.union_size(), ms(walk_t)),
    ]);

    // Sampling overhead from consistency rejection.
    let mut sampler = SetUnionSampler::new(
        w.clone(),
        &exact.overlap,
        UnionSamplerConfig {
            policy: CoverPolicy::MembershipOracle,
            ..Default::default()
        },
    )
    .expect("sampler");
    let ((_, report), t) = timed(|| sampler.sample(1000, &mut rng).expect("run"));
    table.push_row(vec!["sample 1000: time_ms".into(), ms(t)]);
    table.push_row(vec![
        "spanning-tree rejections".into(),
        report.rejected_join.to_string(),
    ]);
    table.push_row(vec![
        "acceptance".into(),
        format!("{:.3}", report.acceptance_ratio()),
    ]);
    println!("{table}");
}

/// Ablation 6: data skew (the paper's named future-work direction).
/// Zipf-skewed foreign keys vs estimator accuracy and EO efficiency.
fn skew_panel(scale: usize, seed: u64) {
    let mut table = FigureTable::new(
        "Ablation — FK skew (Zipf exponent) on UQ1: estimation error and EO efficiency",
        &[
            "zipf_s",
            "hist_ratio_err",
            "walk_ratio_err",
            "eo_acceptance",
        ],
    );
    for s in [0.0f64, 0.5, 1.0, 1.5] {
        let mut opts = UqOptions::new(scale, seed, 0.2);
        opts.config = opts.config.with_skew(s);
        let w = Arc::new(build_workload("uq1", &opts).expect("uq1"));
        let exact = full_join_union(&w).expect("truth");
        let mut rng = SujRng::seed_from_u64(seed);
        let (hist_map, _) =
            estimate_overlaps(EstimatorKind::HistogramEo, &w, &mut rng).expect("hist");
        let (walk_map, _) =
            estimate_overlaps(EstimatorKind::RandomWalk, &w, &mut rng).expect("walk");
        let hist_err = mean(&ratio_errors(&hist_map, &exact));
        let walk_err = mean(&ratio_errors(&walk_map, &exact));

        let mut sampler = SetUnionSampler::new(
            w.clone(),
            &exact.overlap,
            UnionSamplerConfig {
                weights: WeightKind::ExtendedOlken,
                policy: CoverPolicy::MembershipOracle,
                ..Default::default()
            },
        )
        .expect("sampler");
        let (_, report) = sampler.sample(500, &mut rng).expect("run");
        let subroutine_acceptance =
            report.accepted as f64 / (report.accepted + report.rejected_join).max(1) as f64;
        table.push_row(vec![
            format!("{s:.1}"),
            format!("{hist_err:.3}"),
            format!("{walk_err:.3}"),
            format!("{subroutine_acceptance:.3}"),
        ]);
    }
    println!("{table}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panel = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_flag(&args, "--scale", 2) as usize;
    let seed = parse_flag(&args, "--seed", 42);

    match panel {
        "cover-policy" => cover_policy_panel(scale, seed),
        "degree-mode" => degree_mode_panel(scale, seed),
        "template" => template_panel(scale, seed),
        "phi" => phi_panel(scale, seed),
        "cyclic" => cyclic_panel(scale, seed),
        "skew" => skew_panel(scale, seed),
        "all" => {
            cover_policy_panel(scale, seed);
            degree_mode_panel(scale, seed);
            template_panel(scale, seed);
            phi_panel(scale, seed);
            cyclic_panel(scale, seed);
            skew_panel(scale, seed);
        }
        other => {
            eprintln!(
                "unknown panel `{other}`; try cover-policy|degree-mode|template|phi|cyclic|skew|all"
            );
            std::process::exit(2);
        }
    }
}
