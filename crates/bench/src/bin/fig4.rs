//! Regenerates Figure 4 of the paper (§9.1): join-to-union ratio
//! estimation error and union-size estimation runtime, histogram-based
//! vs FullJoin, on UQ1 and UQ3 across overlap scales.
//!
//! Usage: `fig4 [ratio-error-uq1|ratio-error-uq3|runtime-uq1|runtime-uq3|all]
//!         [--scale U] [--seed S]`

use std::sync::Arc;
use suj_bench::*;
use suj_core::prelude::*;
use suj_stats::SujRng;

const OVERLAPS: [f64; 6] = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8];

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn ratio_error_panel(workload_name: &str, scale: usize, seed: u64) {
    let mut table = FigureTable::new(
        format!(
            "Fig 4{} — error of |J_i|/|U| (histogram+EO) on {}",
            if workload_name == "uq1" { "a" } else { "b" },
            workload_name.to_uppercase()
        ),
        &["overlap", "mean_err", "max_err", "min_err"],
    );
    for p in OVERLAPS {
        let opts = UqOptions::new(scale, seed, p);
        let w = build_workload(workload_name, &opts).expect("workload");
        let exact = full_join_union(&w).expect("ground truth");
        let mut rng = SujRng::seed_from_u64(seed);
        let (map, _) = estimate_overlaps(EstimatorKind::HistogramEo, &w, &mut rng).expect("est");
        let errs = ratio_errors(&map, &exact);
        let max = errs.iter().cloned().fold(0.0, f64::max);
        let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        table.push_row(vec![
            format!("{p:.2}"),
            format!("{:.4}", mean(&errs)),
            format!("{max:.4}"),
            format!("{min:.4}"),
        ]);
    }
    println!("{table}");
}

fn runtime_panel(workload_name: &str, scale: usize, seed: u64) {
    let mut table = FigureTable::new(
        format!(
            "Fig 4{} — union size estimation runtime on {}",
            if workload_name == "uq1" { "c" } else { "d" },
            workload_name.to_uppercase()
        ),
        &["overlap", "hist_ms", "fulljoin_ms", "speedup"],
    );
    for p in OVERLAPS {
        let opts = UqOptions::new(scale, seed, p);
        let w = build_workload(workload_name, &opts).expect("workload");
        let mut rng = SujRng::seed_from_u64(seed);
        let (_, hist_time) =
            estimate_overlaps(EstimatorKind::HistogramEo, &w, &mut rng).expect("est");
        let (_, full_time) = timed(|| full_join_union(&w).expect("full join"));
        let speedup = full_time.as_secs_f64() / hist_time.as_secs_f64().max(1e-9);
        table.push_row(vec![
            format!("{p:.2}"),
            ms(hist_time),
            ms(full_time),
            format!("{speedup:.1}x"),
        ]);
    }
    println!("{table}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let panel = args.first().map(String::as_str).unwrap_or("all");
    // Panel defaults: error panels need full-join ground truth at every
    // overlap (keep small); runtime panels need enough data for the
    // histogram-vs-FullJoin gap to show (the paper's regime).
    let scale_flag = parse_flag(&args, "--scale", 0) as usize;
    let err_scale = if scale_flag == 0 { 4 } else { scale_flag };
    let rt_scale = if scale_flag == 0 { 16 } else { scale_flag };
    let seed = parse_flag(&args, "--seed", 42);

    // Keep one Arc around so workloads drop cheaply in loops.
    let _keep: Option<Arc<UnionWorkload>> = None;

    match panel {
        "ratio-error-uq1" => ratio_error_panel("uq1", err_scale, seed),
        "ratio-error-uq3" => ratio_error_panel("uq3", err_scale, seed),
        "runtime-uq1" => runtime_panel("uq1", rt_scale, seed),
        "runtime-uq3" => runtime_panel("uq3", rt_scale, seed),
        "all" => {
            ratio_error_panel("uq1", err_scale, seed);
            ratio_error_panel("uq3", err_scale, seed);
            runtime_panel("uq1", rt_scale, seed);
            runtime_panel("uq3", rt_scale, seed);
        }
        other => {
            eprintln!("unknown panel `{other}`; try ratio-error-uq1|ratio-error-uq3|runtime-uq1|runtime-uq3|all");
            std::process::exit(2);
        }
    }
}
