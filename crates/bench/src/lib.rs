//! Benchmark harness shared by the figure binaries and Criterion
//! benches.
//!
//! Every panel of the paper's evaluation (Figures 4, 5, 6 — §9) has a
//! regenerating binary in `src/bin/`; this library holds the common
//! machinery: aligned table printing, timing, the three estimator
//! configurations the paper compares (histogram+EO, histogram+EW,
//! random-walk), and ratio-error metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use suj_core::prelude::*;
use suj_core::walk_estimator::walk_warmup;
use suj_join::WeightKind;
use suj_stats::SujRng;
pub use suj_tpch::prelude::*;

/// An aligned text table, one per figure panel.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Panel title (e.g. "Fig 4a — ratio error, UQ1").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:>w$}  ", h, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{}  ", "-".repeat(widths[i]))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                write!(f, "{:>w$}  ", c, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Times a closure, returning its output and wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The estimator configurations §9 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Histogram-based overlaps with extended-Olken join size hints.
    HistogramEo,
    /// Histogram-based overlaps with exact (EW) join size hints.
    HistogramEw,
    /// Random-walk warm-up estimation.
    RandomWalk,
}

impl EstimatorKind {
    /// Short label used in figure tables.
    pub fn label(&self) -> &'static str {
        match self {
            EstimatorKind::HistogramEo => "hist+EO",
            EstimatorKind::HistogramEw => "hist+EW",
            EstimatorKind::RandomWalk => "rand-walk",
        }
    }
}

/// Produces an overlap map with the given estimator, returning the
/// warm-up time alongside.
pub fn estimate_overlaps(
    kind: EstimatorKind,
    workload: &UnionWorkload,
    rng: &mut SujRng,
) -> Result<(OverlapMap, Duration), CoreError> {
    let start = Instant::now();
    let map = match kind {
        EstimatorKind::HistogramEo => {
            HistogramEstimator::with_olken(workload, DegreeMode::Max)?.overlap_map()?
        }
        EstimatorKind::HistogramEw => {
            let sizes = workload.exact_join_sizes()?;
            HistogramEstimator::new(workload, DegreeMode::Max, sizes, 0.0)?.overlap_map()?
        }
        EstimatorKind::RandomWalk => {
            let est = walk_warmup(workload, &WalkEstimatorConfig::default(), rng)?;
            est.overlap_map()?
        }
    };
    Ok((map, start.elapsed()))
}

/// The weight kind a configuration uses in the join subroutine.
pub fn weight_kind_for(kind: EstimatorKind) -> WeightKind {
    match kind {
        EstimatorKind::HistogramEo => WeightKind::ExtendedOlken,
        EstimatorKind::HistogramEw | EstimatorKind::RandomWalk => WeightKind::Exact,
    }
}

/// Per-join absolute errors of the estimated ratio `|J_i| / |U|`
/// against ground truth (the §9.1 metric).
pub fn ratio_errors(estimated: &OverlapMap, exact: &ExactUnion) -> Vec<f64> {
    let n = estimated.n();
    let est_union = estimated.union_size().max(f64::MIN_POSITIVE);
    let true_union = exact.union_size() as f64;
    (0..n)
        .map(|j| {
            let est_ratio = estimated.join_size(j) / est_union;
            let true_ratio = exact.join_size(j) as f64 / true_union;
            (est_ratio - true_ratio).abs() / true_ratio
        })
        .collect()
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Builds a workload by name ("uq1" | "uq2" | "uq3" | "uq4" — the
/// cyclic extension).
pub fn build_workload(name: &str, opts: &UqOptions) -> Result<UnionWorkload, CoreError> {
    match name {
        "uq1" => uq1(opts),
        "uq2" => uq2(opts),
        "uq3" => uq3(opts),
        "uq4" => uq4_cyclic(opts),
        other => Err(CoreError::Invalid(format!("unknown workload `{other}`"))),
    }
}

/// The builder-level estimator for a §9 configuration.
pub fn estimator_for(kind: EstimatorKind) -> Estimator {
    match kind {
        EstimatorKind::HistogramEo => Estimator::Histogram(HistogramOptions::default()),
        EstimatorKind::HistogramEw => Estimator::Histogram(HistogramOptions {
            exact_size_hints: true,
            ..Default::default()
        }),
        EstimatorKind::RandomWalk => Estimator::Walk(WalkEstimatorConfig::default()),
    }
}

/// Runs Algorithm 1 end-to-end with the given estimator configuration;
/// returns the run report (configuration stamped, warm-up time filled
/// in) and the warm-up (estimation + assembly) time.
pub fn run_set_union(
    workload: &Arc<UnionWorkload>,
    kind: EstimatorKind,
    n_samples: usize,
    seed: u64,
) -> Result<(RunReport, Duration), CoreError> {
    // Estimation and sampling must not share an RNG stream (the
    // rand-walk configuration would otherwise retrace its estimation
    // walks while sampling), so the estimation seed is derived.
    let (built, warmup) = timed(|| {
        SamplerBuilder::for_workload(workload.clone())
            .estimator(estimator_for(kind))
            .weights(weight_kind_for(kind))
            .cover_policy(CoverPolicy::Record)
            .estimation_seed(seed ^ 0x9e37_79b9_7f4a_7c15)
            .build()
    });
    let mut sampler = built?;
    let mut rng = SujRng::seed_from_u64(seed);
    let (_, mut report) = sampler.sample(n_samples, &mut rng)?;
    report.warmup_time = warmup;
    Ok((report, warmup))
}

/// Builds a [`Strategy::Auto`] sampler: the planner picks the
/// configuration, which lands in the report's
/// [`config`](RunReport::config).
pub fn build_auto_sampler(
    workload: Arc<UnionWorkload>,
    seed: u64,
) -> Result<Box<dyn suj_core::UnionSampler + Send>, CoreError> {
    SamplerBuilder::for_workload(workload)
        .strategy(Strategy::Auto)
        .estimation_seed(seed)
        .build()
}

/// The manual set-union configurations `Strategy::Auto` competes with
/// (§9's matrix: Algorithm 1 under each estimator, the Bernoulli
/// union trick, and online Algorithm 2).
pub fn manual_set_union_candidates(
    workload: &Arc<UnionWorkload>,
    seed: u64,
) -> Vec<(String, Box<dyn suj_core::UnionSampler>)> {
    let mut out: Vec<(String, Box<dyn suj_core::UnionSampler>)> = Vec::new();
    for kind in [
        EstimatorKind::HistogramEo,
        EstimatorKind::HistogramEw,
        EstimatorKind::RandomWalk,
    ] {
        let sampler = SamplerBuilder::for_workload(workload.clone())
            .estimator(estimator_for(kind))
            .weights(weight_kind_for(kind))
            .estimation_seed(seed)
            .build()
            .expect("rejection candidate");
        out.push((format!("rejection/{}", kind.label()), sampler));
    }
    let bernoulli = SamplerBuilder::for_workload(workload.clone())
        .estimator(estimator_for(EstimatorKind::HistogramEw))
        .strategy(Strategy::Bernoulli(DesignationPolicy::Record))
        .estimation_seed(seed)
        .build()
        .expect("bernoulli candidate");
    out.push(("bernoulli/hist+EW".into(), bernoulli));
    // Reuse is disabled for the comparison: the reuse phase emits
    // *copies* of previously drawn tuples (§7's rate R), so with it on
    // the per-sample time measures duplication, not fresh-sample
    // throughput.
    let online = SamplerBuilder::for_workload(workload.clone())
        .strategy(Strategy::Online(OnlineConfig {
            reuse: false,
            ..OnlineConfig::default()
        }))
        .estimation_seed(seed)
        .build()
        .expect("online candidate");
    out.push(("online".into(), online));
    out
}

/// Steady-state sampling time: one warm-up batch (fills records /
/// reuse pools), then the timed batch.
pub fn steady_sampling_time(
    sampler: &mut dyn suj_core::UnionSampler,
    n: usize,
    seed: u64,
) -> Duration {
    let mut rng = SujRng::seed_from_u64(seed);
    sampler.sample(n.min(100), &mut rng).expect("warm-up batch");
    let (result, t) = timed(|| sampler.sample(n, &mut rng));
    result.expect("timed batch");
    t
}

/// Serves `requests` deterministic sampling requests (ids `0..requests`,
/// `n` samples each) over a shared prepared query with a
/// `workers`-thread [`SamplingService`]; returns the responses sorted
/// by request id, the batch wall time, and the final service stats.
/// Same `root_seed` + same ids ⇒ bit-identical responses for any
/// worker count — the serving determinism contract the concurrent
/// benches assert.
pub fn serve_prepared(
    prepared: &Arc<suj_core::PreparedQuery>,
    workers: usize,
    requests: u64,
    n: usize,
    root_seed: u64,
) -> (Vec<SampleResponse>, Duration, ServiceStats) {
    let service = SamplingService::start(
        Engine::default(),
        ServiceConfig::with_workers(workers).root_seed(root_seed),
    );
    let batch = (0..requests)
        .map(|id| SampleRequest::prepared(id, n, prepared))
        .collect();
    let start = Instant::now();
    let mut responses = service.run_batch(batch).expect("serve batch");
    let elapsed = start.elapsed();
    responses.sort_by_key(|r| r.id);
    (responses, elapsed, service.shutdown())
}

/// Best-of-`reps` serving wall time (load spikes from concurrently
/// running test binaries hit single measurements hard; the minimum is
/// the stable statistic).
pub fn best_serve_time(
    prepared: &Arc<suj_core::PreparedQuery>,
    workers: usize,
    requests: u64,
    n: usize,
    reps: usize,
) -> Duration {
    (0..reps.max(1))
        .map(|rep| serve_prepared(prepared, workers, requests, n, 1000 + rep as u64).1)
        .min()
        .expect("at least one rep")
}

/// Builds an Algorithm 1 sampler for a named workload through the
/// fluent [`SamplerBuilder`] — the harness entry point Criterion
/// benches share.
pub fn build_set_union_sampler(
    workload: Arc<UnionWorkload>,
    kind: EstimatorKind,
    seed: u64,
) -> Result<Box<dyn suj_core::UnionSampler + Send>, CoreError> {
    let estimator = match kind {
        EstimatorKind::HistogramEo => Estimator::Histogram(HistogramOptions::default()),
        EstimatorKind::HistogramEw => Estimator::Histogram(HistogramOptions {
            exact_size_hints: true,
            ..Default::default()
        }),
        EstimatorKind::RandomWalk => Estimator::Walk(WalkEstimatorConfig::default()),
    };
    SamplerBuilder::for_workload(workload)
        .estimator(estimator)
        .weights(weight_kind_for(kind))
        .estimation_seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_table_formats_aligned() {
        let mut t = FigureTable::new("demo", &["x", "time_ms"]);
        t.push_row(vec!["1".into(), "0.5".into()]);
        t.push_row(vec!["100".into(), "12.25".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("time_ms"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn figure_table_rejects_ragged_rows() {
        let mut t = FigureTable::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn ratio_errors_zero_for_exact_map() {
        let opts = UqOptions::new(1, 3, 0.3);
        let w = uq3(&opts).unwrap();
        let exact = full_join_union(&w).unwrap();
        let errs = ratio_errors(&exact.overlap, &exact);
        for e in errs {
            assert!(e < 1e-9, "exact map must have zero ratio error, got {e}");
        }
    }

    #[test]
    fn estimators_produce_positive_unions() {
        let opts = UqOptions::new(1, 3, 0.3);
        let w = uq3(&opts).unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        for kind in [
            EstimatorKind::HistogramEo,
            EstimatorKind::HistogramEw,
            EstimatorKind::RandomWalk,
        ] {
            let (map, _) = estimate_overlaps(kind, &w, &mut rng).unwrap();
            assert!(map.union_size() > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn run_set_union_produces_report() {
        let opts = UqOptions::new(1, 3, 0.3);
        let w = Arc::new(uq3(&opts).unwrap());
        let (report, warmup) = run_set_union(&w, EstimatorKind::HistogramEw, 50, 9).unwrap();
        assert!(report.accepted >= 50);
        assert!(warmup > Duration::ZERO);
    }

    #[test]
    fn run_set_union_report_names_its_configuration() {
        let opts = UqOptions::new(1, 3, 0.3);
        let w = Arc::new(uq3(&opts).unwrap());
        let (report, _) = run_set_union(&w, EstimatorKind::HistogramEo, 30, 9).unwrap();
        let config = report.config.expect("config stamped");
        assert_eq!(config.strategy, "rejection");
        assert_eq!(config.estimator, "histogram(EO)");
    }

    /// ISSUE 2 acceptance: on the set-union workloads, `Strategy::Auto`
    /// must select a configuration whose steady-state sample throughput
    /// is within 2× of the best manual configuration.
    ///
    /// Wall-clock measurements contend with concurrently running test
    /// binaries, so reps are interleaved round-robin across all
    /// configurations (load spikes hit everyone equally) and the check
    /// retries a few times — a flaky environment must not look like a
    /// planner regression, while a genuinely >2× configuration still
    /// fails every attempt.
    #[test]
    fn auto_throughput_within_2x_of_best_manual() {
        let opts = UqOptions::new(1, 42, 0.2);
        for name in ["uq1", "uq2", "uq3"] {
            let w = Arc::new(build_workload(name, &opts).unwrap());
            let n = 400usize;
            let reps = 5u64;
            let mut auto = build_auto_sampler(w.clone(), 42).unwrap();
            let auto_label = auto
                .report()
                .config
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_default();
            let mut candidates = manual_set_union_candidates(&w, 42);
            let mut verdict = None;
            for _attempt in 0..3 {
                let mut auto_t = Duration::MAX;
                let mut times = vec![Duration::MAX; candidates.len()];
                for i in 0..reps {
                    auto_t = auto_t.min(steady_sampling_time(&mut *auto, n, 7 + i));
                    for (slot, (_, sampler)) in times.iter_mut().zip(candidates.iter_mut()) {
                        *slot = (*slot).min(steady_sampling_time(&mut **sampler, n, 7 + i));
                    }
                }
                let (best_idx, best) = times.iter().enumerate().min_by_key(|(_, t)| **t).unwrap();
                let within = auto_t.as_secs_f64() <= best.as_secs_f64() * 2.0;
                verdict = Some((auto_t, *best, candidates[best_idx].0.clone()));
                if within {
                    break;
                }
            }
            let (auto_t, best, best_label) = verdict.unwrap();
            assert!(
                auto_t.as_secs_f64() <= best.as_secs_f64() * 2.0,
                "{name}: auto [{auto_label}] took {auto_t:?}, more than 2x the best \
                 manual configuration [{best_label}] at {best:?} on every attempt"
            );
        }
    }

    /// ISSUE 3 acceptance (determinism half): a 4-worker serving run is
    /// bit-identical per request id to a 1-worker run with the same
    /// root seed, on each of the set-union workloads.
    #[test]
    fn serving_is_deterministic_across_worker_counts() {
        let opts = UqOptions::new(1, 42, 0.2);
        for name in ["uq1", "uq2", "uq3"] {
            let prepared = Arc::new(
                suj_core::PreparedQuery::auto(Arc::new(build_workload(name, &opts).unwrap()))
                    .unwrap(),
            );
            let (one, _, stats1) = serve_prepared(&prepared, 1, 24, 64, 42);
            let (four, _, stats4) = serve_prepared(&prepared, 4, 24, 64, 42);
            assert_eq!(stats1.completed, 24);
            assert_eq!(stats4.completed, 24);
            assert_eq!(one.len(), four.len());
            for (a, b) in one.iter().zip(&four) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.tuples, b.tuples,
                    "{name}: request {} diverged between 1 and 4 workers",
                    a.id
                );
            }
            // Estimation was paid once at prepare; 48 served requests
            // only minted handles.
            assert!(prepared.estimations() <= 1);
            assert_eq!(prepared.handles(), 48);
        }
    }

    /// ISSUE 3 acceptance (throughput half): with ≥4 cores, 4 workers
    /// serve ≥2× the single-worker throughput. Hardware-gated — on
    /// fewer cores thread parallelism physically cannot speed up a
    /// CPU-bound load, so the assertion would only measure the host.
    #[test]
    fn serving_scales_with_workers_when_cores_allow() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!("skipping scaling assertion: {cores} core(s) available");
            return;
        }
        let opts = UqOptions::new(1, 42, 0.2);
        for name in ["uq1", "uq2", "uq3"] {
            let prepared = Arc::new(
                suj_core::PreparedQuery::auto(Arc::new(build_workload(name, &opts).unwrap()))
                    .unwrap(),
            );
            let mut speedup = 0.0f64;
            // Retry: a shared CI box can starve one attempt; a genuine
            // scaling regression fails all three.
            for _ in 0..3 {
                let t1 = best_serve_time(&prepared, 1, 64, 256, 3);
                let t4 = best_serve_time(&prepared, 4, 64, 256, 3);
                speedup = t1.as_secs_f64() / t4.as_secs_f64().max(f64::EPSILON);
                if speedup >= 2.0 {
                    break;
                }
            }
            assert!(
                speedup >= 2.0,
                "{name}: 4-worker speedup {speedup:.2}x stayed below 2x"
            );
        }
    }

    #[test]
    fn workload_lookup() {
        let opts = UqOptions::new(1, 3, 0.3);
        assert!(build_workload("uq1", &opts).is_ok());
        assert!(build_workload("nope", &opts).is_err());
    }
}
