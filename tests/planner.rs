//! Integration tests for the declarative layer and the cost-based
//! planner: `Strategy::Auto` must be seed-for-seed identical to the
//! explicit configuration it selects, `Plan::explain()` must cite the
//! paper-derived rule that fired, and planning must be deterministic.

use proptest::prelude::*;
use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::session::Strategy as SujStrategy;

fn relation(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .into_iter()
        .map(|vals| vals.into_iter().map(Value::int).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

fn chain_join(name: &str, a: Vec<Vec<i64>>, b: Vec<Vec<i64>>) -> Arc<JoinSpec> {
    Arc::new(
        JoinSpec::chain(
            name,
            vec![
                Arc::new(relation(&format!("{name}_r"), &["a", "b"], a)),
                Arc::new(relation(&format!("{name}_s"), &["b", "c"], b)),
            ],
        )
        .unwrap(),
    )
}

/// Joins over disjoint key ranges: Σ|Jᵢ|/|∪| = 1.
fn low_overlap_workload() -> Arc<UnionWorkload> {
    let j1 = chain_join(
        "j1",
        vec![vec![1, 10], vec![2, 20], vec![3, 20]],
        vec![vec![10, 100], vec![20, 200]],
    );
    let j2 = chain_join(
        "j2",
        vec![vec![7, 70], vec![8, 80]],
        vec![vec![70, 700], vec![80, 800]],
    );
    Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap())
}

/// Two identical joins: Σ|Jᵢ|/|∪| = 2.
fn high_overlap_workload() -> Arc<UnionWorkload> {
    let rows_r = vec![vec![1, 10], vec![2, 20], vec![3, 20], vec![4, 10]];
    let rows_s = vec![vec![10, 100], vec![20, 200]];
    let j1 = chain_join("j1", rows_r.clone(), rows_s.clone());
    let j2 = chain_join("j2", rows_r, rows_s);
    Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap())
}

/// One empty join next to a live one.
fn empty_join_workload() -> Arc<UnionWorkload> {
    let j1 = chain_join("full", vec![vec![1, 10], vec![2, 10]], vec![vec![10, 100]]);
    let j2 = chain_join("empty", vec![], vec![]);
    Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap())
}

/// Builds the explicit builder configuration a plan describes and
/// checks seed-for-seed equality of `Strategy::Auto` against it.
fn assert_auto_matches_explicit(workload: Arc<UnionWorkload>, seed: u64) {
    let plan = Planner::default().plan(&workload, UnionSemantics::Set);

    // Auto path.
    let mut auto = SamplerBuilder::for_workload(workload.clone())
        .strategy(SujStrategy::Auto)
        .build()
        .unwrap();

    // Explicit path: exactly the knobs the plan names, via the public
    // setters.
    let mut builder = SamplerBuilder::for_workload(workload).strategy(plan.strategy);
    if let Some(est) = plan.estimator {
        builder = builder.estimator(est);
    }
    if let Some(w) = plan.weights {
        builder = builder.weights(w);
    }
    if let Some(cs) = plan.cover_strategy {
        builder = builder.cover_strategy(cs);
    }
    let mut explicit = builder.build().unwrap();

    let mut rng_a = SujRng::seed_from_u64(seed);
    let mut rng_b = SujRng::seed_from_u64(seed);
    let (a, report_a) = auto.sample(80, &mut rng_a).unwrap();
    let (b, report_b) = explicit.sample(80, &mut rng_b).unwrap();
    assert_eq!(a, b, "Auto must replay the explicit configuration");
    assert_eq!(report_a.accepted, report_b.accepted);
    // Both record the same resolved configuration; Auto adds the rule.
    let cfg_a = report_a.config.expect("auto config stamped");
    let cfg_b = report_b.config.expect("explicit config stamped");
    assert_eq!(cfg_a.strategy, cfg_b.strategy);
    assert_eq!(cfg_a.estimator, cfg_b.estimator);
    assert_eq!(cfg_a.cover, cfg_b.cover);
    assert!(cfg_a.rule.is_some());
    assert!(cfg_b.rule.is_none());
}

#[test]
fn auto_matches_explicit_on_low_overlap() {
    let w = low_overlap_workload();
    let plan = Planner::default().plan(&w, UnionSemantics::Set);
    assert_eq!(plan.rule, PlanRule::LowOverlap);
    assert!(matches!(plan.strategy, SujStrategy::Bernoulli(_)));
    assert_auto_matches_explicit(w, 101);
}

#[test]
fn auto_matches_explicit_on_high_overlap() {
    let w = high_overlap_workload();
    let plan = Planner::default().plan(&w, UnionSemantics::Set);
    assert_eq!(plan.rule, PlanRule::HighOverlap);
    assert!(matches!(plan.strategy, SujStrategy::Rejection));
    assert_auto_matches_explicit(w, 202);
}

#[test]
fn auto_matches_explicit_on_empty_join() {
    let w = empty_join_workload();
    // Planning must succeed and sampling must only ever return live
    // tuples even with a dead join in the union.
    assert_auto_matches_explicit(w.clone(), 303);
    let mut sampler = SamplerBuilder::for_workload(w.clone())
        .strategy(SujStrategy::Auto)
        .build()
        .unwrap();
    let exact = full_join_union(&w).unwrap();
    let mut rng = SujRng::seed_from_u64(9);
    let (samples, _) = sampler.sample(30, &mut rng).unwrap();
    for t in &samples {
        assert!(exact.union_set.contains(t));
    }
}

#[test]
fn auto_with_probed_map_matches_fresh_estimation() {
    // UQ1 at scale 1 exceeds the exact-estimation row threshold, so
    // the planner selects histogram estimation and hands its probed
    // overlap map to the build; the explicit path re-estimates from
    // scratch. Seed-for-seed equality proves the reused map is
    // identical to a fresh estimation.
    let w = Arc::new(uq1(&UqOptions::new(1, 7, 0.2)).unwrap());
    let plan = Planner::default().plan(&w, UnionSemantics::Set);
    assert!(matches!(
        plan.estimator,
        Some(suj_core::session::Estimator::Histogram(_))
    ));
    assert_auto_matches_explicit(w, 404);
}

#[test]
fn explain_cites_the_rule_that_fired() {
    let planner = Planner::default();

    let explain = planner
        .plan(&low_overlap_workload(), UnionSemantics::Set)
        .explain();
    assert!(explain.contains("rule: low-overlap"), "{explain}");
    assert!(explain.contains("§3"), "{explain}");
    assert!(explain.contains("Bernoulli"), "{explain}");

    let explain = planner
        .plan(&high_overlap_workload(), UnionSemantics::Set)
        .explain();
    assert!(explain.contains("rule: high-overlap"), "{explain}");
    assert!(explain.contains("§4–§5"), "{explain}");
    assert!(explain.contains("cover"), "{explain}");

    let explain = planner
        .plan(&high_overlap_workload(), UnionSemantics::Disjoint)
        .explain();
    assert!(explain.contains("rule: disjoint-semantics"), "{explain}");
    assert!(explain.contains("Definition 1"), "{explain}");

    let explain = Planner::without_statistics()
        .plan(&high_overlap_workload(), UnionSemantics::Set)
        .explain();
    assert!(explain.contains("rule: no-statistics"), "{explain}");
    assert!(explain.contains("§6–§7"), "{explain}");
    assert!(
        explain.contains("online") || explain.contains("Algorithm 2"),
        "{explain}"
    );
}

#[test]
fn no_statistics_auto_runs_online() {
    // The no-statistics rule plans Algorithm 2, which estimates while
    // sampling; verify the planned configuration actually runs.
    let w = high_overlap_workload();
    let plan = Planner::without_statistics().plan(&w, UnionSemantics::Set);
    assert!(matches!(plan.strategy, SujStrategy::Online(_)));
    let mut sampler = plan.build(w.clone()).unwrap();
    let exact = full_join_union(&w).unwrap();
    let mut rng = SujRng::seed_from_u64(17);
    let (samples, report) = sampler.sample(40, &mut rng).unwrap();
    assert_eq!(samples.len(), 40);
    for t in &samples {
        assert!(exact.union_set.contains(t));
    }
    assert_eq!(
        report.config.unwrap().rule.as_deref(),
        Some("no-statistics")
    );
}

#[test]
fn engine_pays_estimation_once_across_runs() {
    // A served workload: prepare once, run many times. Estimation
    // (warm-up) happens at prepare() time, so per-run reports must not
    // accrue further warm-up time.
    let mut catalog = Catalog::new();
    catalog
        .register(relation(
            "r",
            &["a", "b"],
            vec![vec![1, 10], vec![2, 20], vec![3, 20]],
        ))
        .unwrap();
    catalog
        .register(relation(
            "s",
            &["b", "c"],
            vec![vec![10, 100], vec![20, 200]],
        ))
        .unwrap();
    let engine = Engine::new(catalog);
    let query = UnionQuery::set_union().chain("j", ["r", "s"]).unwrap();
    let prepared = engine.prepare(&query).unwrap();
    let mut rng = SujRng::seed_from_u64(23);
    for _ in 0..5 {
        let (samples, report) = prepared.run(10, &mut rng).unwrap();
        assert_eq!(samples.len(), 10);
        assert_eq!(report.warmup_time, std::time::Duration::ZERO);
    }
    assert!(prepared.report().accepted >= 50);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planning is a pure function of the workload: for any generated
    /// two-join workload, two independent planners produce identical
    /// plans (summary, rule, and explanation), and the Auto build is
    /// reproducible seed-for-seed.
    #[test]
    fn planning_is_deterministic(
        rows_a in prop::collection::vec((0i64..6, 0i64..4), 1..10),
        rows_b in prop::collection::vec((0i64..6, 0i64..4), 1..10),
        seed in 0u64..1000,
    ) {
        let mk = || {
            let a: Vec<Vec<i64>> = rows_a.iter().map(|&(x, y)| vec![x, y]).collect();
            let b: Vec<Vec<i64>> = rows_b.iter().map(|&(x, y)| vec![x, y]).collect();
            let s: Vec<Vec<i64>> = (0..4).map(|v| vec![v, 100 + v]).collect();
            let j1 = chain_join("j1", a, s.clone());
            let j2 = chain_join("j2", b, s);
            Arc::new(UnionWorkload::new(vec![j1, j2]).unwrap())
        };
        let w1 = mk();
        let w2 = mk();
        let p1 = Planner::default().plan(&w1, UnionSemantics::Set);
        let p2 = Planner::default().plan(&w2, UnionSemantics::Set);
        prop_assert_eq!(p1.rule, p2.rule);
        prop_assert_eq!(p1.summary(), p2.summary());
        prop_assert_eq!(p1.explain(), p2.explain());

        // Same workload + same seed → same Auto sample sequence.
        let build = |w: Arc<UnionWorkload>| {
            SamplerBuilder::for_workload(w)
                .strategy(SujStrategy::Auto)
                .build()
                .unwrap()
        };
        let mut s1 = build(w1);
        let mut s2 = build(w2);
        let mut rng1 = SujRng::seed_from_u64(seed);
        let mut rng2 = SujRng::seed_from_u64(seed);
        let (t1, _) = s1.sample(12, &mut rng1).unwrap();
        let (t2, _) = s2.sample(12, &mut rng2).unwrap();
        prop_assert_eq!(t1, t2);
    }
}
