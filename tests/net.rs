//! Wire-protocol integration tests: the TCP serving tier preserves
//! the in-process determinism contract end-to-end, snapshot-restored
//! replicas answer bit-identically without re-estimation, and
//! protocol-level failures surface as typed responses rather than
//! hangups.
//!
//! The release-mode CI smoke step runs the `#[ignore]`d stress test at
//! the bottom (`cargo test --release --test net -- --ignored`).

use sample_union_joins::prelude::*;
use sample_union_joins::{Client, NetError, Server, ServerOptions, ServiceConfig};
use std::time::Duration;
use suj_net::protocol::{self, Frame, ERR_BAD_REQUEST, ERR_UNKNOWN_PREPARED};

fn relation(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .into_iter()
        .map(|vals| vals.into_iter().map(Value::int).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

fn default_engine() -> Engine {
    let mut catalog = Catalog::new();
    catalog
        .register(relation(
            "ra",
            &["a", "b"],
            vec![vec![1, 0], vec![2, 0], vec![3, 1], vec![4, 2]],
        ))
        .unwrap();
    catalog
        .register(relation(
            "rb",
            &["a", "b"],
            vec![vec![1, 0], vec![9, 1], vec![8, 3], vec![7, 2]],
        ))
        .unwrap();
    catalog
        .register(relation(
            "s",
            &["b", "c"],
            (0..4).map(|v| vec![v, 100 + v]).collect(),
        ))
        .unwrap();
    Engine::new(catalog)
}

fn union_query() -> UnionQuery {
    UnionQuery::set_union()
        .chain("j1", ["ra", "s"])
        .unwrap()
        .chain("j2", ["rb", "s"])
        .unwrap()
}

/// The flagship determinism check: for the same prepared query, root
/// seed, and request seed, samples drawn (a) in-process, (b) over TCP
/// from the original engine, and (c) over TCP from a snapshot-restored
/// replica are identical tuple-for-tuple — and the replica restores
/// without a single estimation pass.
#[test]
fn wire_samples_match_in_process_and_restored_replica() {
    let engine = default_engine();
    let query = union_query();
    let prepared = engine.prepare(&query).unwrap();
    let n = 32usize;
    let seeds = [0u64, 7, 41, 1000];
    let local: Vec<Vec<Tuple>> = seeds
        .iter()
        .map(|&s| prepared.sample(n, s).unwrap().0)
        .collect();

    // Cold replica: restore catalog + prepared cache from bytes alone.
    let bytes = engine.snapshot_to_bytes().unwrap();
    let restored = Engine::load_snapshot_bytes(&bytes).unwrap();

    let server_a = Server::bind(engine.clone(), "127.0.0.1:0", ServiceConfig::default()).unwrap();
    let server_b = Server::bind(restored, "127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client_a = Client::connect(server_a.addr()).unwrap();
    let mut client_b = Client::connect(server_b.addr()).unwrap();

    let remote_a = client_a.prepare(&query).unwrap();
    let remote_b = client_b.prepare(&query).unwrap();
    assert_eq!(
        remote_b.estimations, 0,
        "snapshot-restored replica must serve without re-estimating"
    );
    assert_eq!(remote_a.summary, remote_b.summary, "plans must coincide");

    for (i, &seed) in seeds.iter().enumerate() {
        let a = client_a.sample(&remote_a, n, seed).unwrap();
        let b = client_b.sample(&remote_b, n, seed).unwrap();
        assert_eq!(a.tuples.len(), n);
        assert_eq!(
            a.tuples, local[i],
            "wire vs in-process diverged at seed {seed}"
        );
        assert_eq!(
            b.tuples, local[i],
            "replica vs in-process diverged at seed {seed}"
        );
        assert_eq!(a.attrs, b.attrs);
    }

    // Counters travelled too: both servers served every request.
    let stats = client_a.stats().unwrap();
    assert_eq!(stats.completed, seeds.len() as u64);
    assert_eq!(stats.failed, 0);
    let replica_stats = client_b.stats().unwrap();
    assert!(
        replica_stats.snapshot_bytes > 0,
        "replica stats must report the snapshot it was restored from"
    );

    client_a.shutdown().unwrap();
    client_b.shutdown().unwrap();
    server_a.join().unwrap();
    server_b.join().unwrap();
}

/// Unknown prepared ids come back as a typed remote error, and the
/// connection stays usable afterwards.
#[test]
fn unknown_prepared_id_is_a_typed_error() {
    let server = Server::bind(
        default_engine(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(1),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.sample_by_id(12345, 4, 0) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ERR_UNKNOWN_PREPARED),
        other => panic!("expected typed remote error, got {other:?}"),
    }
    // Same connection still serves.
    let remote = client.prepare(&union_query()).unwrap();
    assert_eq!(client.sample(&remote, 4, 0).unwrap().tuples.len(), 4);
    client.shutdown().unwrap();
    server.join().unwrap();
}

/// A frame with an unknown opcode gets an `Error` response (code
/// `ERR_BAD_REQUEST`), not a dropped connection.
#[test]
fn unknown_opcode_gets_error_frame() {
    let server = Server::bind(
        default_engine(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(1),
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let request = Frame::empty(0x7777, 99);
    request.write_to(&mut stream).unwrap();
    let response = Frame::read_from(&mut stream).unwrap();
    assert_eq!(response.opcode, protocol::OP_ERROR);
    assert_eq!(response.request_id, 99);
    let (code, message) = protocol::decode_error(&response.payload).unwrap();
    assert_eq!(code, ERR_BAD_REQUEST);
    assert!(message.contains("opcode"));
    drop(stream);
    server.stop();
    server.join().unwrap();
}

/// A request whose deadline budget cannot possibly be met comes back
/// as the typed [`NetError::DeadlineExceeded`] — and a generous budget
/// changes nothing about the sampled bits.
#[test]
fn wire_deadlines_are_typed_and_do_not_change_samples() {
    let server = Server::bind(
        default_engine(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(1),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client.prepare(&union_query()).unwrap();

    // A 1ns budget expires before the worker can even dequeue.
    match client.sample_within(&remote, 1000, 7, Duration::from_nanos(1)) {
        Err(NetError::DeadlineExceeded) => {}
        other => panic!("expected typed deadline error, got {other:?}"),
    }

    // The connection survives, and a generous budget is bit-identical
    // to no budget at all: the deadline check never alters the draw
    // sequence.
    let unbounded = client.sample(&remote, 32, 7).unwrap();
    let budgeted = client
        .sample_within(&remote, 32, 7, Duration::from_secs(60))
        .unwrap();
    assert_eq!(unbounded.tuples, budgeted.tuples);

    // The failed request is a counted, typed failure — not a lost one.
    let stats = client.stats().unwrap();
    assert!(stats.failed >= 1);
    client.shutdown().unwrap();
    server.join().unwrap();
}

/// After `Server::stop`, a connection in its drain window answers
/// queued requests with typed `ShuttingDown` errors instead of a raw
/// EOF.
#[test]
fn stopped_server_drains_with_typed_shutting_down_frames() {
    let server = Server::bind_with(
        default_engine(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(1),
        ServerOptions::default().with_drain_grace(Duration::from_secs(3)),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client.prepare(&union_query()).unwrap();
    assert_eq!(client.sample(&remote, 8, 0).unwrap().tuples.len(), 8);

    server.stop();
    // The established connection is draining: requests sent now get a
    // typed answer, not a hangup.
    match client.sample(&remote, 8, 1) {
        Err(NetError::ShuttingDown) => {}
        other => panic!("expected typed shutting-down error, got {other:?}"),
    }
    match client.stats() {
        Err(NetError::ShuttingDown) => {}
        other => panic!("expected typed shutting-down error, got {other:?}"),
    }
    server.join().unwrap();
}

/// A peer that starts a frame and then stalls is dropped once the I/O
/// grace expires — it cannot pin its connection thread — and the
/// server keeps serving everyone else.
#[test]
fn stalled_mid_frame_peer_is_dropped_after_the_grace() {
    use std::io::{Read, Write};
    let server = Server::bind_with(
        default_engine(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(1),
        ServerOptions::default().with_io_grace(Duration::from_millis(200)),
    )
    .unwrap();

    // Send half a header, then stall.
    let mut stalled = std::net::TcpStream::connect(server.addr()).unwrap();
    stalled.write_all(b"SUJN\x02\x00").unwrap();
    stalled.flush().unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let start = std::time::Instant::now();
    let mut buf = [0u8; 1];
    // The server must close the connection (read yields 0/EOF or a
    // reset) well before our 5s read timeout.
    let dropped = matches!(stalled.read(&mut buf), Ok(0) | Err(_));
    assert!(dropped, "server must drop a stalled mid-frame peer");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drop must come from the server's grace, not our timeout"
    );

    // Other connections were never affected.
    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client.prepare(&union_query()).unwrap();
    assert_eq!(client.sample(&remote, 8, 0).unwrap().tuples.len(), 8);
    client.shutdown().unwrap();
    server.join().unwrap();
}

/// `Server::stop` shuts the accept loop down without a wire request,
/// and `join` returns.
#[test]
fn local_stop_terminates_the_server() {
    let server = Server::bind(
        default_engine(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(1),
    )
    .unwrap();
    assert!(!server.is_shutting_down());
    server.stop();
    assert!(server.is_shutting_down());
    server.join().unwrap();
}

/// Release-mode stress: concurrent clients over a deliberately tiny
/// queue. `Busy` frames occur and are absorbed by the client's bounded
/// retry; every request eventually succeeds and every response matches
/// the in-process reference bit-for-bit.
#[test]
#[ignore = "stress profile: run via CI's release-mode net smoke step"]
fn stress_concurrent_tcp_clients_stay_deterministic() {
    let engine = default_engine();
    let query = union_query();
    let prepared = engine.prepare(&query).unwrap();
    let n = 16usize;
    let requests_per_client = 64u64;
    let clients = 8u64;

    let server = Server::bind(
        engine.clone(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(4).queue_capacity(8),
    )
    .unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for c in 0..clients {
            let query = query.clone();
            let prepared = &prepared;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap().with_busy_retries(1 << 20);
                let remote = client.prepare(&query).unwrap();
                for r in 0..requests_per_client {
                    let seed = c * 10_000 + r;
                    let batch = client.sample(&remote, n, seed).unwrap();
                    let (reference, _) = prepared.sample(n, seed).unwrap();
                    assert_eq!(
                        batch.tuples, reference,
                        "client {c} request {r} diverged from in-process reference"
                    );
                }
            });
        }
    });

    let mut closer = Client::connect(addr).unwrap();
    let stats = closer.stats().unwrap();
    assert_eq!(stats.completed, clients * requests_per_client);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.tuples_served,
        clients * requests_per_client * n as u64
    );
    println!(
        "served {} requests across {clients} clients: {stats:?}",
        stats.completed
    );
    closer.shutdown().unwrap();
    server.join().unwrap();
}
