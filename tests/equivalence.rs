//! Determinism / equivalence suite for the unified API.
//!
//! For a fixed `SujRng` seed, every sampler reached through
//! `SamplerBuilder` (and consumed through the `UnionSampler` trait or a
//! `SampleStream`) must produce byte-identical tuples to the legacy
//! direct-constructor path. Samplers that never retract also get
//! stream-vs-batch parity; the suite closes with a chi-squared
//! uniformity check run entirely through `Box<dyn UnionSampler>`.

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::algorithm2::OnlineConfig;
use suj_core::walk_estimator::{walk_warmup, WalkEstimatorConfig};
use suj_join::WeightKind;
use suj_storage::{CompareOp, FxHashMap, Predicate, Value};

fn workload() -> Arc<UnionWorkload> {
    Arc::new(uq3(&UqOptions::new(1, 61, 0.3)).expect("uq3"))
}

fn batch(sampler: &mut dyn UnionSampler, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = SujRng::seed_from_u64(seed);
    sampler.sample(n, &mut rng).expect("sampling").0
}

fn streamed(sampler: &mut dyn UnionSampler, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = SujRng::seed_from_u64(seed);
    SampleStream::over(sampler, &mut rng)
        .take(n)
        .collect::<Result<_, _>>()
        .expect("stream")
}

#[test]
fn algorithm1_oracle_builder_and_stream_match_legacy() {
    let w = workload();
    let exact = full_join_union(&w).unwrap();
    let cfg = UnionSamplerConfig {
        policy: CoverPolicy::MembershipOracle,
        ..Default::default()
    };
    let mut legacy = SetUnionSampler::new(w.clone(), &exact.overlap, cfg).unwrap();
    let legacy_out = batch(&mut legacy, 300, 7);

    let build = || {
        SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .cover_policy(CoverPolicy::MembershipOracle)
            .build()
            .unwrap()
    };
    let mut via_builder = build();
    assert_eq!(batch(&mut via_builder, 300, 7), legacy_out);

    // The oracle policy never retracts → streaming is byte-identical
    // too.
    let mut via_stream = build();
    assert_eq!(streamed(&mut via_stream, 300, 7), legacy_out);
}

#[test]
fn algorithm1_record_builder_matches_legacy() {
    // UQ2 is the high-overlap workload: the record machinery (cover
    // rejections and revisions) actually fires here.
    let w = Arc::new(uq2(&UqOptions::new(1, 62, 0.2)).expect("uq2"));
    let exact = full_join_union(&w).unwrap();
    let mut legacy =
        SetUnionSampler::new(w.clone(), &exact.overlap, UnionSamplerConfig::default()).unwrap();
    let legacy_out = batch(&mut legacy, 300, 8);
    assert!(
        legacy.report().revised > 0 || legacy.report().rejected_cover > 0,
        "workload must exercise the record machinery"
    );

    let mut via_builder = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::Record)
        .build()
        .unwrap();
    assert_eq!(batch(&mut via_builder, 300, 8), legacy_out);
}

#[test]
fn algorithm1_walk_estimator_builder_matches_legacy() {
    let w = workload();
    let walk_cfg = WalkEstimatorConfig {
        max_walks_per_join: 300,
        ..Default::default()
    };
    // Legacy path: hand-wired walk warm-up feeding the constructor.
    let mut est_rng = SujRng::seed_from_u64(123);
    let est = walk_warmup(&w, &walk_cfg, &mut est_rng).unwrap();
    let map = est.overlap_map().unwrap();
    let mut legacy = SetUnionSampler::new(
        w.clone(),
        &map,
        UnionSamplerConfig {
            policy: CoverPolicy::MembershipOracle,
            ..Default::default()
        },
    )
    .unwrap();
    let legacy_out = batch(&mut legacy, 200, 9);

    let mut via_builder = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Walk(walk_cfg))
        .estimation_seed(123)
        .cover_policy(CoverPolicy::MembershipOracle)
        .build()
        .unwrap();
    assert_eq!(batch(&mut via_builder, 200, 9), legacy_out);
}

#[test]
fn online_builder_matches_legacy() {
    let w = workload();
    let cfg = OnlineConfig {
        phi: 64,
        warmup: WalkEstimatorConfig {
            max_walks_per_join: 200,
            min_walks_per_join: 64,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut legacy = OnlineUnionSampler::new(w.clone(), cfg, CoverStrategy::AsGiven);
    let legacy_out = batch(&mut legacy, 250, 10);

    let mut via_builder = SamplerBuilder::for_workload(w)
        .strategy(Strategy::Online(cfg))
        .build()
        .unwrap();
    assert_eq!(batch(&mut via_builder, 250, 10), legacy_out);
}

#[test]
fn bernoulli_builder_and_stream_match_legacy() {
    let w = workload();
    let exact = full_join_union(&w).unwrap();
    // Legacy path fed with the same estimator outputs the builder uses.
    let sizes: Vec<f64> = (0..w.n_joins())
        .map(|j| exact.overlap.join_size(j))
        .collect();
    let mut legacy = BernoulliUnionSampler::new(
        w.clone(),
        &sizes,
        exact.overlap.union_size(),
        WeightKind::Exact,
    )
    .unwrap();
    let legacy_out = batch(&mut legacy, 300, 11);

    let build = || {
        SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .strategy(Strategy::Bernoulli(DesignationPolicy::Oracle))
            .build()
            .unwrap()
    };
    let mut via_builder = build();
    assert_eq!(batch(&mut via_builder, 300, 11), legacy_out);
    let mut via_stream = build();
    assert_eq!(streamed(&mut via_stream, 300, 11), legacy_out);
}

#[test]
fn disjoint_builder_and_stream_match_legacy() {
    let w = workload();
    let mut legacy = DisjointUnionSampler::with_exact_sizes(w.clone(), WeightKind::Exact).unwrap();
    let legacy_out = batch(&mut legacy, 300, 12);

    let build = || {
        SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .strategy(Strategy::Disjoint)
            .build()
            .unwrap()
    };
    let mut via_builder = build();
    assert_eq!(batch(&mut via_builder, 300, 12), legacy_out);
    let mut via_stream = build();
    assert_eq!(streamed(&mut via_stream, 300, 12), legacy_out);
}

#[test]
fn predicate_wrapper_matches_hand_wrapped_sampler() {
    let w = workload();
    let exact = full_join_union(&w).unwrap();
    let pred = Predicate::cmp(
        w.canonical_schema().attrs()[0].as_ref(),
        CompareOp::Ge,
        Value::int(0),
    );
    // Legacy-ish path: construct the sampler directly, wrap by hand.
    let inner = SetUnionSampler::new(
        w.clone(),
        &exact.overlap,
        UnionSamplerConfig {
            policy: CoverPolicy::MembershipOracle,
            ..Default::default()
        },
    )
    .unwrap();
    let mut hand_wrapped = PredicateSampler::new(Box::new(inner), &pred).unwrap();
    let legacy_out = batch(&mut hand_wrapped, 200, 13);

    let mut via_builder = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::MembershipOracle)
        .predicate(pred, PredicateMode::Reject)
        .build()
        .unwrap();
    assert_eq!(batch(&mut via_builder, 200, 13), legacy_out);
}

#[test]
fn repeated_batches_continue_deterministically() {
    // Two half-size batches over one sampler equal one full batch over
    // a fresh sampler for never-retracting strategies: state persists
    // and the RNG stream is the only source of randomness.
    let w = workload();
    let build = || {
        SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .cover_policy(CoverPolicy::MembershipOracle)
            .build()
            .unwrap()
    };
    let mut whole = build();
    let whole_out = batch(&mut whole, 200, 14);

    let mut split = build();
    let mut rng = SujRng::seed_from_u64(14);
    let (mut first, _) = split.sample(100, &mut rng).unwrap();
    let (second, _) = split.sample(100, &mut rng).unwrap();
    first.extend(second);
    assert_eq!(first, whole_out);
}

#[test]
fn chi_squared_uniformity_through_trait_object() {
    let w = workload();
    let exact = full_join_union(&w).unwrap();
    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    let mut sampler: Box<dyn UnionSampler> = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::MembershipOracle)
        .build()
        .unwrap();
    let mut rng = SujRng::seed_from_u64(15);
    let n = 500 * universe.len();
    let (samples, _) = sampler.sample(n, &mut rng).unwrap();
    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(
        outcome.p_value > 1e-3,
        "not uniform through the trait object: p = {:e}",
        outcome.p_value
    );
}
