//! Property-based tests for snapshot persistence: random relations
//! (every column variant, NULLs, `Mixed`) and hash indexes survive a
//! write → read round trip bit-identically, and corrupted, truncated,
//! or wrong-version snapshot files always fail with a named
//! [`SnapshotError`] — never a panic.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use suj_core::catalog::{Catalog, Engine};
use suj_core::query::UnionQuery;
use suj_storage::snapshot::{
    decode_index, decode_relation, decode_sorted_index, encode_index, encode_relation,
    encode_sorted_index, read_sections, write_sections, ByteReader, ByteWriter, SECTION_RELATION,
};
use suj_storage::{
    HashIndex, Relation, Schema, Snapshot, SnapshotError, SortedIndex, Tuple, Value,
};

// ---------------------------------------------------------------------
// Random relation generator: per-column kind (Int / Float / Str /
// Mixed), every kind salted with NULLs.
// ---------------------------------------------------------------------

/// Raw material for one cell; which parts are used depends on the
/// column kind.
type RawCell = (u8, i64, f64, String);

fn cell_value(kind: u8, raw: &RawCell) -> Value {
    let (tag, i, f, s) = raw;
    if tag % 4 == 0 {
        return Value::Null;
    }
    let variant = match kind {
        0 => 1,       // Int column
        1 => 2,       // Float column
        2 => 3,       // Str column
        _ => tag % 4, // Mixed column: whatever the tag says
    };
    match variant {
        1 => Value::int(*i),
        2 => Value::float(*f),
        _ => Value::str(s),
    }
}

/// A random relation: arity 1–3, up to ~24 rows, column kinds chosen
/// independently per position.
fn random_relation() -> impl Strategy<Value = Relation> {
    (1usize..=3, 0u8..4, 0u8..4, 0u8..4).prop_flat_map(|(arity, k0, k1, k2)| {
        let cell = (0u8..8, -50i64..50, -1e3f64..1e3, "[a-d]{0,3}");
        (
            Just((arity, [k0, k1, k2])),
            prop::collection::vec(cell, 0..72),
        )
            .prop_map(|((arity, kinds), raw)| {
                let names = ["a", "b", "c"];
                let schema = Schema::new(names[..arity].to_vec()).unwrap();
                let rows: Vec<Tuple> = raw
                    .chunks_exact(arity)
                    .map(|chunk| {
                        Tuple::new(
                            chunk
                                .iter()
                                .enumerate()
                                .map(|(p, raw)| cell_value(kinds[p], raw))
                                .collect(),
                        )
                    })
                    .collect();
                Relation::new("r", schema, rows).unwrap()
            })
    })
}

fn assert_relations_equal(a: &Relation, b: &Relation) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.name(), b.name());
    prop_assert_eq!(a.schema().attrs(), b.schema().attrs());
    prop_assert_eq!(a.len(), b.len());
    for p in 0..a.schema().arity() {
        for i in 0..a.len() {
            prop_assert_eq!(
                a.column(p).value(i),
                b.column(p).value(i),
                "cell ({}, {})",
                i,
                p
            );
        }
    }
    Ok(())
}

fn encode_rel_bytes(rel: &Relation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_relation(rel, &mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any relation — every column variant, NULLs, Mixed — survives
    /// encode → decode, and re-encoding the restored relation yields
    /// the exact same bytes.
    #[test]
    fn relation_round_trip_is_bit_identical(rel in random_relation()) {
        let bytes = encode_rel_bytes(&rel);
        let mut r = ByteReader::new(&bytes);
        let back = decode_relation(&mut r).unwrap();
        prop_assert!(r.is_empty(), "decoder left {} bytes", r.remaining());
        assert_relations_equal(&rel, &back)?;
        prop_assert_eq!(bytes, encode_rel_bytes(&back));
    }

    /// A hash index on any prefix of the attributes behaves
    /// identically after a round trip, and re-encodes to the same
    /// bytes.
    #[test]
    fn index_round_trip_is_bit_identical(
        rel in random_relation(),
        key_arity_seed in 0usize..3,
    ) {
        let arity = rel.schema().arity();
        let key_arity = 1 + key_arity_seed % arity;
        let attrs: Vec<Arc<str>> = rel.schema().attrs()[..key_arity].to_vec();
        let idx = HashIndex::build(&rel, &attrs);

        let mut w = ByteWriter::new();
        encode_index(&idx, &mut w);
        let bytes = w.into_bytes();
        let back = decode_index(&mut ByteReader::new(&bytes), &rel).unwrap();

        prop_assert_eq!(idx.n_keys(), back.n_keys());
        for kid in 0..idx.n_keys() as u32 {
            prop_assert_eq!(idx.key_values(kid), back.key_values(kid));
            prop_assert_eq!(idx.postings(kid), back.postings(kid));
        }
        for rid in 0..rel.len() as u32 {
            prop_assert_eq!(idx.key_id_of_row(rid), back.key_id_of_row(rid));
        }

        let mut w2 = ByteWriter::new();
        encode_index(&back, &mut w2);
        prop_assert_eq!(bytes, w2.into_bytes());
    }

    /// A sorted index over any prefix of the attributes behaves
    /// identically after a round trip (same permutation, block prefix
    /// sums, and range counts), and re-encodes to the same bytes.
    #[test]
    fn sorted_index_round_trip_is_bit_identical(
        rel in random_relation(),
        key_arity_seed in 0usize..3,
    ) {
        let arity = rel.schema().arity();
        let key_arity = 1 + key_arity_seed % arity;
        let attrs: Vec<Arc<str>> = rel.schema().attrs()[..key_arity].to_vec();
        let idx = SortedIndex::build(&rel, &attrs);

        let mut w = ByteWriter::new();
        encode_sorted_index(&idx, &mut w);
        let bytes = w.into_bytes();
        let back = decode_sorted_index(&mut ByteReader::new(&bytes), &rel).unwrap();

        prop_assert_eq!(idx.attrs(), back.attrs());
        prop_assert_eq!(idx.len(), back.len());
        prop_assert_eq!(idx.max_block(), back.max_block());
        for pos in 0..idx.len() {
            prop_assert_eq!(idx.row_at(pos), back.row_at(pos));
        }
        for hi in 0..=idx.len() {
            prop_assert_eq!(idx.distinct_in(0, hi), back.distinct_in(0, hi));
        }

        let mut w2 = ByteWriter::new();
        encode_sorted_index(&back, &mut w2);
        prop_assert_eq!(bytes, w2.into_bytes());
    }

    /// Single-byte corruption of a serialized sorted index either
    /// fails with a named error or decodes to the exact original —
    /// the decoder re-validates the permutation, sortedness, and block
    /// sums against the relation's cells, so it can never return an
    /// index that lies.
    #[test]
    fn corrupted_sorted_indexes_never_panic_or_lie(
        rel in random_relation(),
        flip_seed in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let attrs: Vec<Arc<str>> = rel.schema().attrs().to_vec();
        let idx = SortedIndex::build(&rel, &attrs);
        let mut w = ByteWriter::new();
        encode_sorted_index(&idx, &mut w);
        let mut bytes = w.into_bytes();
        let pos = flip_seed % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        match decode_sorted_index(&mut ByteReader::new(&bytes), &rel) {
            Err(_) => {} // named error: fine
            Ok(back) => {
                for p in 0..idx.len() {
                    prop_assert_eq!(idx.row_at(p), back.row_at(p));
                }
                prop_assert_eq!(idx.max_block(), back.max_block());
            }
        }
    }

    /// Truncating a serialized sorted index anywhere fails with a
    /// named error — never a panic.
    #[test]
    fn truncated_sorted_indexes_fail(
        rel in random_relation(),
        cut_seed in 0usize..10_000,
    ) {
        let attrs: Vec<Arc<str>> = rel.schema().attrs().to_vec();
        let idx = SortedIndex::build(&rel, &attrs);
        let mut w = ByteWriter::new();
        encode_sorted_index(&idx, &mut w);
        let bytes = w.into_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(decode_sorted_index(&mut ByteReader::new(&bytes[..cut]), &rel).is_err());
    }

    /// Every strict prefix of a sectioned snapshot file fails with a
    /// named error — never a panic, never a silent partial read.
    #[test]
    fn truncated_snapshots_fail_with_named_errors(
        rel in random_relation(),
        cut_seed in 0usize..10_000,
    ) {
        let bytes = write_sections(&[(SECTION_RELATION, encode_rel_bytes(&rel))]);
        let cut = cut_seed % bytes.len();
        let err = read_sections(&bytes[..cut]).unwrap_err();
        // Truncation must surface as a structural error, not a
        // checksum accident on garbage.
        prop_assert!(
            matches!(
                err,
                SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::Corrupt(_)
            ),
            "cut {} gave {:?}",
            cut,
            err
        );
    }

    /// Flipping any single byte either fails with a named error or —
    /// when the flip lands in alignment padding — still restores the
    /// exact original relation. No panic, no corrupted data returned.
    #[test]
    fn corrupted_snapshots_never_panic_or_lie(
        rel in random_relation(),
        flip_seed in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let bytes = write_sections(&[(SECTION_RELATION, encode_rel_bytes(&rel))]);
        let mut corrupted = bytes.clone();
        let pos = flip_seed % corrupted.len();
        corrupted[pos] ^= 1 << flip_bit;
        match read_sections(&corrupted) {
            Err(_) => {} // named error: fine
            Ok(sections) => {
                // The flip landed in padding; the payload must be
                // untouched.
                prop_assert_eq!(sections.len(), 1);
                let mut r = ByteReader::new(sections[0].1);
                let back = decode_relation(&mut r).unwrap();
                assert_relations_equal(&rel, &back)?;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases the random sweeps don't pin precisely.
// ---------------------------------------------------------------------

#[test]
fn wrong_version_fails_with_unsupported_version() {
    let mut bytes = write_sections(&[]);
    // Layout: 8-byte magic, then the u32 format version.
    bytes[8] = 99;
    assert_eq!(
        Snapshot::read_bytes(&bytes).unwrap_err(),
        SnapshotError::UnsupportedVersion(99)
    );
}

#[test]
fn flipped_magic_fails_with_bad_magic() {
    let mut bytes = write_sections(&[]);
    bytes[0] ^= 0xff;
    assert_eq!(
        Snapshot::read_bytes(&bytes).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn empty_file_fails_with_named_error() {
    // An empty file has no magic to speak of; either structural error
    // is acceptable, a panic is not.
    assert!(matches!(
        Snapshot::read_bytes(&[]).unwrap_err(),
        SnapshotError::BadMagic | SnapshotError::Truncated
    ));
}

// ---------------------------------------------------------------------
// Engine-level snapshots: random corruption of a full engine snapshot
// (catalog + prepared cache) never panics either.
// ---------------------------------------------------------------------

fn small_engine() -> Engine {
    let schema_r = Schema::new(["a", "b"]).unwrap();
    let schema_s = Schema::new(["b", "c"]).unwrap();
    let rows = |k: i64| {
        (0..20)
            .map(|i| Tuple::new(vec![Value::int(i % 7), Value::int((i * k) % 5)]))
            .collect()
    };
    let mut catalog = Catalog::new();
    catalog
        .register(Relation::new("r", schema_r, rows(3)).unwrap())
        .unwrap();
    catalog
        .register(Relation::new("s", schema_s, rows(2)).unwrap())
        .unwrap();
    let engine = Engine::new(catalog);
    let query = UnionQuery::set_union().chain("q", ["r", "s"]).unwrap();
    engine.prepare(&query).unwrap();
    engine
}

fn engine_snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| small_engine().snapshot_to_bytes().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-byte corruption of an engine snapshot (catalog +
    /// prepared-query cache) is always either rejected with a named
    /// error or restores an engine with the original catalog.
    #[test]
    fn corrupted_engine_snapshots_never_panic(
        flip_seed in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let bytes = engine_snapshot_bytes();
        let mut corrupted = bytes.to_vec();
        let pos = flip_seed % corrupted.len();
        corrupted[pos] ^= 1 << flip_bit;
        match Engine::load_snapshot_bytes(&corrupted) {
            Err(_) => {}
            Ok(engine) => {
                let names: Vec<&str> = engine.catalog().names().collect();
                prop_assert_eq!(names, vec!["r", "s"]);
            }
        }
    }

    /// Truncating an engine snapshot anywhere fails with a named
    /// error.
    #[test]
    fn truncated_engine_snapshots_fail(cut_seed in 0usize..100_000) {
        let bytes = engine_snapshot_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(Engine::load_snapshot_bytes(&bytes[..cut]).is_err());
    }

    /// Single-byte corruption aimed *inside* the exact-weight alias
    /// arenas section is always rejected with a named error — the
    /// section checksum catches the flip before the arena decoder, and
    /// the decoder itself re-validates every structural invariant
    /// (offset monotonicity, probability range, segment-local aliases)
    /// so a forged checksum still cannot smuggle in a lying arena.
    #[test]
    fn corrupted_ew_arena_bytes_fail_with_named_errors(
        flip_seed in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let bytes = engine_snapshot_bytes();
        let (start, len) = ew_arena_span();
        let mut corrupted = bytes.to_vec();
        let pos = start + flip_seed % len;
        corrupted[pos] ^= 1 << flip_bit;
        prop_assert!(
            Engine::load_snapshot_bytes(&corrupted).is_err(),
            "flip at arena byte {} must be rejected",
            pos
        );
    }
}

// ---------------------------------------------------------------------
// Exact-weight alias arenas ride in their own section (kind 18),
// paired by order with the prepared entry they belong to.
// ---------------------------------------------------------------------

use suj_core::snapshot::{SECTION_EW_ARENAS, SECTION_PREPARED};

/// Byte span `(offset, len)` of the EW arenas payload inside the
/// engine snapshot, located via the payload slice's position in the
/// original buffer.
fn ew_arena_span() -> (usize, usize) {
    let bytes = engine_snapshot_bytes();
    let sections = read_sections(bytes).unwrap();
    let payload = sections
        .iter()
        .find(|(kind, _)| *kind == SECTION_EW_ARENAS)
        .map(|(_, payload)| *payload)
        .expect("acyclic prepared query must persist an EW arenas section");
    let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
    (offset, payload.len())
}

/// An acyclic prepared query persists its count tables + alias arenas
/// as a `SECTION_EW_ARENAS` entry directly after its prepared section
/// — the pairing the restore path depends on.
#[test]
fn engine_snapshots_carry_ew_arena_sections() {
    let sections = read_sections(engine_snapshot_bytes()).unwrap();
    let kinds: Vec<u32> = sections.iter().map(|(kind, _)| *kind).collect();
    let pos = kinds
        .iter()
        .position(|&k| k == SECTION_EW_ARENAS)
        .expect("acyclic prepared query must persist an EW arenas section");
    assert!(pos > 0, "arenas can never lead the section list");
    assert_eq!(
        kinds[pos - 1],
        SECTION_PREPARED,
        "arenas must directly follow their prepared entry: {kinds:?}"
    );
    let (_, len) = ew_arena_span();
    assert!(len > 0, "arena payload must not be empty");
}

/// Restoring an engine snapshot and re-snapshotting it reproduces the
/// exact original bytes, alias arenas included: the restored samplers
/// hold bit-identical count tables and arena slabs, and the section
/// writer is deterministic (fingerprint order).
#[test]
fn engine_snapshot_round_trip_is_bit_identical_with_arenas() {
    let bytes = engine_snapshot_bytes();
    let restored = Engine::load_snapshot_bytes(bytes).unwrap();
    let again = restored.snapshot_to_bytes().unwrap();
    assert_eq!(
        again, bytes,
        "re-snapshotting a restored engine must be bit-identical"
    );
}

// ---------------------------------------------------------------------
// Crash-safe on-disk protocol: temp-file staging, atomic rename, and
// fallback to the previous generation.
// ---------------------------------------------------------------------

/// A scratch snapshot path (plus its `.tmp`/`.prev` siblings), cleaned
/// up on drop so reruns start fresh.
struct SnapDir {
    path: std::path::PathBuf,
}

impl SnapDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join("suj_snapshot_crash_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let this = SnapDir { path };
        this.clean();
        this
    }

    fn clean(&self) {
        std::fs::remove_file(&self.path).ok();
        std::fs::remove_file(snapshot_prev_path(&self.path)).ok();
        std::fs::remove_file(snapshot_tmp_path(&self.path)).ok();
    }
}

impl Drop for SnapDir {
    fn drop(&mut self) {
        self.clean();
    }
}

use suj_storage::snapshot::{snapshot_prev_path, snapshot_tmp_path};

/// Builds the two-generation fixture: generation 1 (one prepared
/// query) lives in `.prev`, generation 2 (two prepared queries) is the
/// main file. Returns the engine and the main file's bytes.
fn two_generations(scratch: &SnapDir) -> (Engine, Vec<u8>) {
    let engine = small_engine();
    engine.save_snapshot(&scratch.path).unwrap();
    let second = UnionQuery::set_union().chain("q2", ["s", "r"]).unwrap();
    engine.prepare(&second).unwrap();
    engine.save_snapshot(&scratch.path).unwrap();
    assert!(
        snapshot_prev_path(&scratch.path).exists(),
        "saving twice must keep the previous generation"
    );
    let v2 = std::fs::read(&scratch.path).unwrap();
    (engine, v2)
}

/// A crash while writing the staging file leaves the previous
/// generation untouched: for every prefix length of the new bytes left
/// in `.tmp`, the main file still loads the newest good generation.
#[test]
fn kill_mid_tmp_write_never_affects_the_main_snapshot() {
    let scratch = SnapDir::new("tmp_torn.snap");
    let (_engine, v2) = two_generations(&scratch);
    let tmp = snapshot_tmp_path(&scratch.path);
    // Sweep every prefix (bounded stride keeps the sweep exhaustive
    // for small snapshots and fast for large ones), plus the exact
    // boundary cases.
    let stride = (v2.len() / 512).max(1);
    let cuts = (0..v2.len()).step_by(stride).chain([0, 1, v2.len() - 1]);
    for cut in cuts {
        std::fs::write(&tmp, &v2[..cut]).unwrap();
        let restored = Engine::load_snapshot(&scratch.path).unwrap();
        assert_eq!(restored.cached_queries(), 2, "cut {cut}");
    }
}

/// A torn main file (crash mid-overwrite, disk corruption) falls back
/// to the previous generation for every possible truncation point.
#[test]
fn torn_main_snapshot_falls_back_at_every_prefix() {
    let scratch = SnapDir::new("main_torn.snap");
    let (_engine, v2) = two_generations(&scratch);
    let stride = (v2.len() / 512).max(1);
    let cuts = (0..v2.len()).step_by(stride).chain([0, 1, v2.len() - 1]);
    for cut in cuts {
        std::fs::write(&scratch.path, &v2[..cut]).unwrap();
        let restored = Engine::load_snapshot(&scratch.path)
            .unwrap_or_else(|e| panic!("cut {cut}: no fallback ({e})"));
        assert_eq!(
            restored.cached_queries(),
            1,
            "cut {cut} must restore the previous generation"
        );
    }
    // Restore the intact main file: the newest generation wins again.
    std::fs::write(&scratch.path, &v2).unwrap();
    assert_eq!(
        Engine::load_snapshot(&scratch.path)
            .unwrap()
            .cached_queries(),
        2
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single-byte corruption of the main file with an intact `.prev`:
    /// the load must succeed — either the flip was benign (newest
    /// generation) or the fallback kicks in (previous generation). The
    /// only acceptable failure is a version-field flip, which is
    /// deliberately not eligible for fallback (a deployment mismatch
    /// must not silently serve stale data).
    #[test]
    fn corrupted_main_with_good_prev_always_recovers(
        flip_seed in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let scratch = SnapDir::new(&format!("flip_{flip_seed}_{flip_bit}.snap"));
        let (_engine, v2) = two_generations(&scratch);
        let mut corrupted = v2.clone();
        let pos = flip_seed % corrupted.len();
        corrupted[pos] ^= 1 << flip_bit;
        std::fs::write(&scratch.path, &corrupted).unwrap();
        match Engine::load_snapshot(&scratch.path) {
            Ok(engine) => {
                let queries = engine.cached_queries();
                prop_assert!(
                    queries == 1 || queries == 2,
                    "flip at {} restored {} prepared queries",
                    pos,
                    queries
                );
                let names: Vec<&str> = engine.catalog().names().collect();
                prop_assert_eq!(names, vec!["r", "s"]);
            }
            Err(e) => {
                // Only an unsupported-version rejection may refuse the
                // fallback.
                prop_assert!(
                    e.to_string().contains("version"),
                    "flip at {} failed with non-version error: {}",
                    pos,
                    e
                );
            }
        }
    }
}
