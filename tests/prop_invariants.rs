//! Property-based tests (proptest) on the framework's core invariants:
//! overlap algebra (Theorem 3 / Eq. 1 / covers), membership oracles,
//! exact-weight sizes, and sampler well-formedness over randomly
//! generated set systems and join instances.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::overlap::OverlapMap;
use suj_join::exec::execute;
use suj_join::weights::{build_sampler, exact_join_size};
use suj_join::WeightKind;
use suj_storage::FxHashSet;

// ---------------------------------------------------------------------
// Overlap algebra over random set systems.
// ---------------------------------------------------------------------

/// A random system of n ≤ 4 sets over a universe of ≤ 32 elements,
/// encoded as membership bitmask per element.
fn set_system() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (2usize..=4).prop_flat_map(|n| {
        let element = 0u8..(1u8 << n);
        (Just(n), prop::collection::vec(element, 1..48))
    })
}

fn overlap_map_of(n: usize, elems: &[u8]) -> OverlapMap {
    OverlapMap::from_fn(n, |idx| {
        let mut delta = 0u8;
        for &j in idx {
            delta |= 1 << j;
        }
        elems.iter().filter(|&&m| m & delta == delta).count() as f64
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Eq. 1 (k-overlap union size) equals inclusion–exclusion equals
    /// the direct count for any set system.
    #[test]
    fn union_size_identities((n, elems) in set_system()) {
        let map = overlap_map_of(n, &elems);
        let truth = elems.iter().filter(|&&m| m != 0).count() as f64;
        prop_assert!((map.union_size() - truth).abs() < 1e-6);
        prop_assert!((map.union_size_inclusion_exclusion() - truth).abs() < 1e-6);
    }

    /// Σ_k |A_j^k| = |J_j| and each k-overlap matches a direct count.
    #[test]
    fn k_overlap_decomposition((n, elems) in set_system()) {
        let map = overlap_map_of(n, &elems);
        for j in 0..n {
            let a = map.k_overlaps(j);
            let size = elems.iter().filter(|&&m| m & (1 << j) != 0).count() as f64;
            let total: f64 = a.iter().sum();
            prop_assert!((total - size).abs() < 1e-6, "join {} total {} size {}", j, total, size);
            for (k0, &ak) in a.iter().enumerate() {
                let direct = elems
                    .iter()
                    .filter(|&&m| m & (1 << j) != 0 && m.count_ones() as usize == k0 + 1)
                    .count() as f64;
                prop_assert!((ak - direct).abs() < 1e-6);
            }
        }
    }

    /// Cover sizes partition the union under every permutation, and
    /// each |J'_i| matches the direct first-owner count.
    #[test]
    fn covers_partition_union((n, elems) in set_system(), perm_seed in 0u64..24) {
        let map = overlap_map_of(n, &elems);
        // Build a permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            let j = (s % (i as u64 + 1)) as usize;
            order.swap(i, j);
            s /= i as u64 + 1;
        }
        let sizes = map.cover_sizes(&order);
        let truth = elems.iter().filter(|&&m| m != 0).count() as f64;
        let total: f64 = sizes.iter().sum();
        prop_assert!((total - truth).abs() < 1e-6);

        // Direct check: |J'_i| counts elements whose earliest owner in
        // cover order is i.
        for (pos, &i) in order.iter().enumerate() {
            let direct = elems
                .iter()
                .filter(|&&m| {
                    m & (1 << i) != 0
                        && order[..pos].iter().all(|&earlier| m & (1 << earlier) == 0)
                })
                .count() as f64;
            prop_assert!((sizes[i] - direct).abs() < 1e-6);
        }
    }
}

// ---------------------------------------------------------------------
// Join-level invariants over random two-relation chains.
// ---------------------------------------------------------------------

/// A random chain join r(a,b) ⋈ s(b,c) with controllable skew.
fn random_chain() -> impl Strategy<Value = JoinSpec> {
    let r_rows = prop::collection::vec((0i64..12, 0i64..6), 1..24);
    let s_rows = prop::collection::vec((0i64..6, 0i64..12), 1..24);
    (r_rows, s_rows).prop_map(|(r, s)| {
        let mk = |name: &str, attrs: [&str; 2], rows: Vec<(i64, i64)>| {
            let schema = Schema::new(attrs).unwrap();
            let mut seen = FxHashSet::default();
            let tuples: Vec<Tuple> = rows
                .into_iter()
                .filter(|&p| seen.insert(p))
                .map(|(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
                .collect();
            Arc::new(Relation::new(name, schema, tuples).unwrap())
        };
        JoinSpec::chain("prop", vec![mk("r", ["a", "b"], r), mk("s", ["b", "c"], s)]).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EW total weight equals the materialized join size.
    #[test]
    fn exact_weight_size_matches_execution(spec in random_chain()) {
        let exec_size = execute(&spec).len() as f64;
        prop_assert_eq!(exact_join_size(&spec).unwrap(), exec_size);
    }

    /// The Olken bound dominates the true size.
    #[test]
    fn olken_bound_dominates(spec in random_chain()) {
        let bound = suj_join::bounds::olken_bound(&spec).unwrap();
        prop_assert!(bound >= execute(&spec).len() as f64);
    }

    /// The membership oracle agrees with materialization on members and
    /// a grid of non-members.
    #[test]
    fn membership_oracle_is_exact(spec in random_chain()) {
        let oracle = MembershipOracle::for_spec(&spec);
        let result = execute(&spec);
        let set = result.distinct_set();
        for t in result.tuples().iter().take(50) {
            prop_assert!(oracle.contains(t));
        }
        for a in 0..4i64 {
            for b in 0..3i64 {
                for c in 0..4i64 {
                    let t = Tuple::new(vec![Value::int(a), Value::int(b), Value::int(c)]);
                    prop_assert_eq!(oracle.contains(&t), set.contains(&t));
                }
            }
        }
    }

    /// Samplers only ever emit true join results.
    #[test]
    fn samplers_emit_members_only(spec in random_chain(), seed in 0u64..1000) {
        let spec = Arc::new(spec);
        let set = execute(&spec).distinct_set();
        let mut rng = SujRng::seed_from_u64(seed);
        for kind in [WeightKind::Exact, WeightKind::ExtendedOlken] {
            let sampler = build_sampler(spec.clone(), kind).unwrap();
            for _ in 0..20 {
                if let suj_join::SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                    prop_assert!(set.contains(&t));
                }
            }
        }
    }

    /// Wander-join walk probabilities are valid and bounded by B.
    #[test]
    fn walk_probabilities_are_consistent(spec in random_chain(), seed in 0u64..1000) {
        let spec = Arc::new(spec);
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(seed);
        for _ in 0..20 {
            if let WalkOutcome::Success { probability, .. } = wander.walk(&mut rng) {
                prop_assert!(probability > 0.0 && probability <= 1.0);
                prop_assert!(1.0 / probability <= wander.bound() + 1e-9);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Histogram estimator bounds over random union workloads.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 4's bound dominates the true overlap for random pairs of
    /// chain joins with a shared output schema.
    #[test]
    fn histogram_bound_dominates_random_overlap(
        r1 in prop::collection::vec((0i64..10, 0i64..5), 4..20),
        r2 in prop::collection::vec((0i64..10, 0i64..5), 4..20),
        s in prop::collection::vec((0i64..5, 0i64..8), 4..16),
    ) {
        let mk = |name: &str, attrs: [&str; 2], rows: &[(i64, i64)]| {
            let schema = Schema::new(attrs).unwrap();
            let mut seen = FxHashSet::default();
            let tuples: Vec<Tuple> = rows
                .iter()
                .filter(|&&p| seen.insert(p))
                .map(|&(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
                .collect();
            Arc::new(Relation::new(name, schema, tuples).unwrap())
        };
        // Both joins share the s relation, so overlap is non-trivial.
        let j1 = JoinSpec::chain("p1", vec![mk("r1", ["a", "b"], &r1), mk("s1", ["b", "c"], &s)]).unwrap();
        let j2 = JoinSpec::chain("p2", vec![mk("r2", ["a", "b"], &r2), mk("s2", ["b", "c"], &s)]).unwrap();
        let w = UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap();
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).unwrap();
        let bound = est.estimate_overlap(&[0, 1]);
        let truth = exact.overlap.overlap(&[0, 1]);
        prop_assert!(bound >= truth - 1e-6, "bound {} < truth {}", bound, truth);
    }
}
