//! Cross-crate integration tests: Theorem 1's uniformity guarantee on
//! the paper's actual workloads (UQ1/UQ2/UQ3), checked by chi-square
//! against materialized ground truth. All samplers are assembled
//! through the fluent `SamplerBuilder`.

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_join::WeightKind;
use suj_storage::FxHashMap;

fn assert_uniform(
    workload: &Arc<UnionWorkload>,
    configure: impl FnOnce(SamplerBuilder) -> SamplerBuilder,
    seed: u64,
    draws_per_tuple: usize,
    p_floor: f64,
) {
    let exact = full_join_union(workload).expect("ground truth");
    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    assert!(universe.len() >= 4, "universe too small to test");

    let mut sampler =
        configure(SamplerBuilder::for_workload(workload.clone()).estimator(Estimator::Exact))
            .build()
            .expect("build");
    let mut rng = SujRng::seed_from_u64(seed);
    let n = draws_per_tuple * universe.len();
    let (samples, _) = sampler.sample(n, &mut rng).expect("sampling");
    assert_eq!(samples.len(), n);

    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        assert!(exact.union_set.contains(t), "sampled non-member {t}");
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(
        outcome.p_value > p_floor,
        "not uniform (chi2 = {:.1}, dof = {}, p = {:e})",
        outcome.statistic,
        outcome.dof,
        outcome.p_value
    );
}

#[test]
fn uq1_uniform_with_oracle_policy_and_exact_weights() {
    let w = Arc::new(uq1(&UqOptions::new(1, 21, 0.3)).expect("uq1"));
    assert_uniform(
        &w,
        |b| {
            b.weights(WeightKind::Exact)
                .cover_policy(CoverPolicy::MembershipOracle)
        },
        1,
        400,
        1e-3,
    );
}

#[test]
fn uq1_uniform_with_record_policy() {
    let w = Arc::new(uq1(&UqOptions::new(1, 21, 0.3)).expect("uq1"));
    assert_uniform(
        &w,
        |b| {
            b.weights(WeightKind::Exact)
                .cover_policy(CoverPolicy::Record)
        },
        2,
        400,
        1e-4, // record policy converges to uniform; allow early drift
    );
}

#[test]
fn uq2_uniform_under_high_overlap() {
    let w = Arc::new(uq2(&UqOptions::new(1, 22, 0.2)).expect("uq2"));
    assert_uniform(
        &w,
        |b| b.cover_policy(CoverPolicy::MembershipOracle),
        3,
        400,
        1e-3,
    );
}

#[test]
fn uq2_uniform_with_extended_olken_subroutine() {
    let w = Arc::new(uq2(&UqOptions::new(1, 22, 0.2)).expect("uq2"));
    assert_uniform(
        &w,
        |b| {
            b.weights(WeightKind::ExtendedOlken)
                .cover_policy(CoverPolicy::MembershipOracle)
        },
        4,
        400,
        1e-3,
    );
}

#[test]
fn uq3_uniform_across_heterogeneous_schemas() {
    let w = Arc::new(uq3(&UqOptions::new(1, 23, 0.4)).expect("uq3"));
    assert_uniform(
        &w,
        |b| b.cover_policy(CoverPolicy::MembershipOracle),
        5,
        400,
        1e-3,
    );
}

#[test]
fn uq3_uniform_with_descending_cover() {
    let w = Arc::new(uq3(&UqOptions::new(1, 23, 0.4)).expect("uq3"));
    assert_uniform(
        &w,
        |b| {
            b.cover_policy(CoverPolicy::MembershipOracle)
                .cover_strategy(CoverStrategy::DescendingSize)
        },
        6,
        400,
        1e-3,
    );
}

#[test]
fn bernoulli_union_trick_uniform_on_uq3() {
    let w = Arc::new(uq3(&UqOptions::new(1, 24, 0.4)).expect("uq3"));
    let exact = full_join_union(&w).expect("ground truth");
    let mut sampler = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .strategy(Strategy::Bernoulli(DesignationPolicy::Oracle))
        .build()
        .expect("sampler");

    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    let mut rng = SujRng::seed_from_u64(9);
    let n = 400 * universe.len();
    let (samples, report) = sampler.sample(n, &mut rng).expect("sampling");
    assert_eq!(samples.len(), n);
    assert!(report.rejected_cover > 0, "overlap must cause rejections");

    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(outcome.p_value > 1e-3, "p = {:e}", outcome.p_value);
}

#[test]
fn disjoint_union_weights_tuples_by_multiplicity() {
    let w = Arc::new(uq2(&UqOptions::new(1, 25, 0.2)).expect("uq2"));
    let exact = full_join_union(&w).expect("ground truth");
    let mut sampler = SamplerBuilder::for_workload(w.clone())
        .estimator(Estimator::Exact)
        .strategy(Strategy::Disjoint)
        .build()
        .expect("sampler");

    let mut rng = SujRng::seed_from_u64(11);
    let n = 120_000;
    let (samples, _) = sampler.sample(n, &mut rng).expect("sampling");

    // Expected frequency of tuple t ∝ number of joins containing it.
    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let v: f64 = (0..w.n_joins()).map(|j| exact.join_size(j) as f64).sum();
    for t in exact.union_set.iter().take(50) {
        let mult = (0..w.n_joins())
            .filter(|&j| exact.join_results[j].contains(t))
            .count() as f64;
        let expected = mult / v;
        let observed = counts.get(t).copied().unwrap_or(0) as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.01 + 3.0 * (expected / n as f64).sqrt(),
            "tuple {t}: observed {observed:.5}, expected {expected:.5}"
        );
    }
}

#[test]
fn uq4_cyclic_joins_sample_uniformly() {
    // The cyclic extension workload: spanning-tree sampling with
    // consistency rejection must stay uniform over the union.
    let w = Arc::new(uq4_cyclic(&UqOptions::new(1, 26, 0.3)).expect("uq4"));
    assert_uniform(
        &w,
        |b| b.cover_policy(CoverPolicy::MembershipOracle),
        12,
        400,
        1e-3,
    );
}

#[test]
fn uq3_uniform_with_wander_join_subroutine() {
    // The third §3.2 weight instantiation: wander-join walks
    // uniformized against the Olken bound.
    let w = Arc::new(uq3(&UqOptions::new(1, 27, 0.4)).expect("uq3"));
    assert_uniform(
        &w,
        |b| {
            b.weights(WeightKind::WanderJoin)
                .cover_policy(CoverPolicy::MembershipOracle)
        },
        13,
        400,
        1e-3,
    );
}

#[test]
fn streamed_samples_are_uniform_through_trait_object() {
    // Chi-squared uniformity through `SampleStream` over a
    // `Box<dyn UnionSampler>` — the oracle policy stream is exactly
    // i.i.d.
    let w = Arc::new(uq3(&UqOptions::new(1, 28, 0.4)).expect("uq3"));
    let exact = full_join_union(&w).expect("ground truth");
    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    let mut sampler: Box<dyn UnionSampler> = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::MembershipOracle)
        .build()
        .expect("sampler");
    let mut rng = SujRng::seed_from_u64(29);
    let n = 400 * universe.len();
    let samples: Vec<Tuple> = SampleStream::over(&mut sampler, &mut rng)
        .take(n)
        .collect::<Result<_, _>>()
        .expect("stream");
    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        assert!(exact.union_set.contains(t));
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(outcome.p_value > 1e-3, "p = {:e}", outcome.p_value);
}
