//! Cross-crate integration tests: Theorem 1's uniformity guarantee on
//! the paper's actual workloads (UQ1/UQ2/UQ3), checked by chi-square
//! against materialized ground truth.

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::algorithm1::UnionSamplerConfig;
use suj_join::WeightKind;
use suj_storage::FxHashMap;

fn assert_uniform(
    workload: &Arc<UnionWorkload>,
    config: UnionSamplerConfig,
    seed: u64,
    draws_per_tuple: usize,
    p_floor: f64,
) {
    let exact = full_join_union(workload).expect("ground truth");
    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    assert!(universe.len() >= 4, "universe too small to test");

    let sampler =
        SetUnionSampler::new(workload.clone(), &exact.overlap, config).expect("sampler");
    let mut rng = SujRng::seed_from_u64(seed);
    let n = draws_per_tuple * universe.len();
    let (samples, _) = sampler.sample(n, &mut rng).expect("sampling");
    assert_eq!(samples.len(), n);

    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        assert!(exact.union_set.contains(t), "sampled non-member {t}");
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(
        outcome.p_value > p_floor,
        "not uniform (chi2 = {:.1}, dof = {}, p = {:e})",
        outcome.statistic,
        outcome.dof,
        outcome.p_value
    );
}

#[test]
fn uq1_uniform_with_oracle_policy_and_exact_weights() {
    let w = Arc::new(uq1(&UqOptions::new(1, 21, 0.3)).expect("uq1"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::Exact,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        1,
        400,
        1e-3,
    );
}

#[test]
fn uq1_uniform_with_record_policy() {
    let w = Arc::new(uq1(&UqOptions::new(1, 21, 0.3)).expect("uq1"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::Exact,
            policy: CoverPolicy::Record,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        2,
        400,
        1e-4, // record policy converges to uniform; allow early drift
    );
}

#[test]
fn uq2_uniform_under_high_overlap() {
    let w = Arc::new(uq2(&UqOptions::new(1, 22, 0.2)).expect("uq2"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::Exact,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        3,
        400,
        1e-3,
    );
}

#[test]
fn uq2_uniform_with_extended_olken_subroutine() {
    let w = Arc::new(uq2(&UqOptions::new(1, 22, 0.2)).expect("uq2"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::ExtendedOlken,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        4,
        400,
        1e-3,
    );
}

#[test]
fn uq3_uniform_across_heterogeneous_schemas() {
    let w = Arc::new(uq3(&UqOptions::new(1, 23, 0.4)).expect("uq3"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::Exact,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        5,
        400,
        1e-3,
    );
}

#[test]
fn uq3_uniform_with_descending_cover() {
    let w = Arc::new(uq3(&UqOptions::new(1, 23, 0.4)).expect("uq3"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::Exact,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::DescendingSize,
            ..Default::default()
        },
        6,
        400,
        1e-3,
    );
}

#[test]
fn bernoulli_union_trick_uniform_on_uq3() {
    let w = Arc::new(uq3(&UqOptions::new(1, 24, 0.4)).expect("uq3"));
    let exact = full_join_union(&w).expect("ground truth");
    let sizes: Vec<f64> = (0..w.n_joins()).map(|j| exact.join_size(j) as f64).collect();
    let sampler = BernoulliUnionSampler::new(
        w.clone(),
        &sizes,
        exact.union_size() as f64,
        WeightKind::Exact,
    )
    .expect("sampler");

    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    let mut rng = SujRng::seed_from_u64(9);
    let n = 400 * universe.len();
    let (samples, report) = sampler.sample(n, &mut rng).expect("sampling");
    assert_eq!(samples.len(), n);
    assert!(report.rejected_cover > 0, "overlap must cause rejections");

    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(outcome.p_value > 1e-3, "p = {:e}", outcome.p_value);
}

#[test]
fn disjoint_union_weights_tuples_by_multiplicity() {
    let w = Arc::new(uq2(&UqOptions::new(1, 25, 0.2)).expect("uq2"));
    let exact = full_join_union(&w).expect("ground truth");
    let sampler = suj_core::disjoint::DisjointUnionSampler::with_exact_sizes(
        w.clone(),
        WeightKind::Exact,
    )
    .expect("sampler");

    let mut rng = SujRng::seed_from_u64(11);
    let n = 120_000;
    let (samples, _) = sampler.sample(n, &mut rng);

    // Expected frequency of tuple t ∝ number of joins containing it.
    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let v = sampler.disjoint_size();
    for t in exact.union_set.iter().take(50) {
        let mult = (0..w.n_joins())
            .filter(|&j| exact.join_results[j].contains(t))
            .count() as f64;
        let expected = mult / v;
        let observed = counts.get(t).copied().unwrap_or(0) as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.01 + 3.0 * (expected / n as f64).sqrt(),
            "tuple {t}: observed {observed:.5}, expected {expected:.5}"
        );
    }
}

#[test]
fn uq4_cyclic_joins_sample_uniformly() {
    // The cyclic extension workload: spanning-tree sampling with
    // consistency rejection must stay uniform over the union.
    let w = Arc::new(uq4_cyclic(&UqOptions::new(1, 26, 0.3)).expect("uq4"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::Exact,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        12,
        400,
        1e-3,
    );
}

#[test]
fn uq3_uniform_with_wander_join_subroutine() {
    // The third §3.2 weight instantiation: wander-join walks
    // uniformized against the Olken bound.
    let w = Arc::new(uq3(&UqOptions::new(1, 27, 0.4)).expect("uq3"));
    assert_uniform(
        &w,
        UnionSamplerConfig {
            weights: WeightKind::WanderJoin,
            policy: CoverPolicy::MembershipOracle,
            strategy: CoverStrategy::AsGiven,
            ..Default::default()
        },
        13,
        400,
        1e-3,
    );
}
