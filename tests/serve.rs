//! Concurrent-serving integration tests: cross-thread determinism,
//! estimate-once semantics, and the `Send`/`Sync` surface of the
//! serving API.
//!
//! The release-mode CI stress step runs the `#[ignore]`d test at the
//! bottom across several worker counts (`cargo test --release --test
//! serve -- --ignored`).

use proptest::prelude::*;
use sample_union_joins::prelude::*;
use std::sync::Arc;

fn relation(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .into_iter()
        .map(|vals| vals.into_iter().map(Value::int).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

/// A catalog with two overlapping chain joins, parameterized by rows so
/// property tests can vary the data.
fn engine_for(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> Engine {
    let to_rows = |rows: &[(i64, i64)]| rows.iter().map(|&(x, y)| vec![x, y]).collect();
    let shared: Vec<Vec<i64>> = (0..4).map(|v| vec![v, 100 + v]).collect();
    let mut catalog = Catalog::new();
    catalog
        .register(relation("ra", &["a", "b"], to_rows(rows_a)))
        .unwrap();
    catalog
        .register(relation("rb", &["a", "b"], to_rows(rows_b)))
        .unwrap();
    catalog
        .register(relation("s", &["b", "c"], shared))
        .unwrap();
    Engine::new(catalog)
}

fn default_engine() -> Engine {
    engine_for(
        &[(1, 0), (2, 0), (3, 1), (4, 2)],
        &[(1, 0), (9, 1), (8, 3), (7, 2)],
    )
}

fn union_query() -> UnionQuery {
    UnionQuery::set_union()
        .chain("j1", ["ra", "s"])
        .unwrap()
        .chain("j2", ["rb", "s"])
        .unwrap()
}

/// Serves ids `0..requests` and returns the responses sorted by id.
fn serve(engine: &Engine, workers: usize, requests: u64, n: usize) -> Vec<SampleResponse> {
    let prepared = engine.prepare(&union_query()).unwrap();
    let service = SamplingService::start(
        engine.clone(),
        ServiceConfig::with_workers(workers).root_seed(2023),
    );
    let batch = (0..requests)
        .map(|id| SampleRequest::prepared(id, n, &prepared))
        .collect();
    let mut responses = service.run_batch(batch).unwrap();
    responses.sort_by_key(|r| r.id);
    let stats = service.shutdown();
    assert_eq!(stats.completed, requests);
    assert_eq!(stats.failed, 0);
    responses
}

/// Compile-time: the serving surface is thread-shareable exactly as
/// the API promises — `Engine` / `PreparedQuery` cross and are shared
/// between threads, built samplers cross threads.
#[test]
fn serving_surface_is_send_sync() {
    fn assert_send<T: Send + ?Sized>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<Arc<PreparedQuery>>();
    assert_send_sync::<SamplingService>();
    assert_send_sync::<suj_core::PreparedSampler>();
    assert_send::<Box<dyn UnionSampler>>();
    assert_send::<Box<dyn UnionSampler + Send>>();
}

/// `SamplerBuilder::build` hands back a sampler that moves to another
/// thread (the `Box<dyn UnionSampler + Send>` acceptance criterion,
/// exercised rather than just typed).
#[test]
fn built_sampler_moves_across_threads() {
    let engine = default_engine();
    let prepared = engine.prepare(&union_query()).unwrap();
    let mut handle = prepared.sampler(3).unwrap();
    let mut rng = prepared.rng(3);
    let (here, _) = handle.sample(10, &mut rng).unwrap();
    let there = std::thread::spawn(move || {
        let mut handle = prepared.sampler(3).unwrap();
        let mut rng = prepared.rng(3);
        handle.sample(10, &mut rng).unwrap().0
    })
    .join()
    .unwrap();
    assert_eq!(here, there);
}

/// Concurrent `prepare` calls for the same query share one plan and pay
/// estimation once.
#[test]
fn concurrent_prepares_share_one_estimation() {
    let engine = default_engine();
    let prepared: Vec<Arc<PreparedQuery>> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let engine = engine.clone();
                scope.spawn(move || engine.prepare(&union_query()).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for p in &prepared[1..] {
        assert!(
            Arc::ptr_eq(&prepared[0], p),
            "all threads must share one prepared plan"
        );
    }
    assert!(prepared[0].estimations() <= 1);
    assert_eq!(engine.cached_queries(), 1);
    // Sampling from every thread re-estimates nothing: per-request
    // reports carry zero warm-up time.
    let (_, report) = prepared[0].sample(8, 1).unwrap();
    assert_eq!(report.warmup_time, std::time::Duration::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE 3 satellite: N requests served on 1 worker and on 4
    /// workers yield identical per-request samples, for arbitrary
    /// two-join data and request counts.
    #[test]
    fn worker_count_never_changes_samples(
        rows_a in prop::collection::vec((0i64..8, 0i64..4), 2..12),
        rows_b in prop::collection::vec((0i64..8, 0i64..4), 2..12),
        requests in 1u64..10,
        n in 1usize..8,
    ) {
        let engine = engine_for(&rows_a, &rows_b);
        let one = serve(&engine, 1, requests, n);
        let four = serve(&engine, 4, requests, n);
        prop_assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.tuples, &b.tuples);
            prop_assert_eq!(a.tuples.len(), n);
        }
    }
}

/// Release-mode stress: sustained traffic across several worker
/// counts, with determinism re-checked against the single-worker
/// reference and counters audited. Time-bounded by construction
/// (fixed request count per worker configuration).
#[test]
#[ignore = "stress profile: run via CI's release-mode serve step"]
fn stress_worker_pools_stay_deterministic_under_load() {
    let engine = default_engine();
    let prepared = engine.prepare(&union_query()).unwrap();
    let requests = 512u64;
    let n = 64usize;
    let reference = serve(&engine, 1, requests, n);
    for workers in [2usize, 4, 8] {
        let service = SamplingService::start(
            engine.clone(),
            ServiceConfig::with_workers(workers)
                .root_seed(2023)
                .queue_capacity(32),
        );
        let batch = (0..requests)
            .map(|id| SampleRequest::prepared(id, n, &prepared))
            .collect();
        let mut responses = service.run_batch(batch).unwrap();
        responses.sort_by_key(|r| r.id);
        let stats = service.shutdown();
        assert_eq!(stats.completed, requests, "workers={workers}");
        assert_eq!(stats.failed, 0, "workers={workers}");
        assert_eq!(stats.tuples_served, requests * n as u64);
        assert!(stats.draw_p50.is_some() && stats.draw_p99.is_some());
        for (a, b) in reference.iter().zip(&responses) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.tuples, b.tuples,
                "workers={workers}: request {} diverged",
                a.id
            );
        }
        println!("workers={workers}: {stats}");
    }
    // The shared plan was estimated once for the entire stress run.
    assert!(prepared.estimations() <= 1);
}
