//! Chaos suite: deterministic fault injection across the serving tier.
//!
//! Built only with `--features faults`. A seeded [`FaultPlan`] injects
//! delays, connection drops, short writes, and byte flips into every
//! connection's byte stream, on both sides of the wire. The contract
//! under fire:
//!
//! - every request ends in a typed outcome — a successful batch or a
//!   [`NetError`] — never a hang, a panic, or a poisoned lock;
//! - the server stays serveable afterwards: a clean client connects,
//!   prepares, and samples;
//! - every *successful* response is bit-identical to the fault-free
//!   reference under the same seed — faults can kill a request, they
//!   can never corrupt one.
//!
//! The release-mode CI chaos step also runs the `#[ignore]`d stress
//! variant (`cargo test --release --features faults --test chaos --
//! --include-ignored`).

#![cfg(feature = "faults")]

use sample_union_joins::prelude::*;
use sample_union_joins::{
    Client, FaultConfig, FaultPlan, NetError, Server, ServerOptions, ServiceConfig,
};
use std::time::Duration;

fn relation(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .into_iter()
        .map(|vals| vals.into_iter().map(Value::int).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

fn default_engine() -> Engine {
    let mut catalog = Catalog::new();
    catalog
        .register(relation(
            "ra",
            &["a", "b"],
            (0..32).map(|i| vec![i, i % 5]).collect(),
        ))
        .unwrap();
    catalog
        .register(relation(
            "rb",
            &["a", "b"],
            (0..24).map(|i| vec![100 + i, i % 4]).collect(),
        ))
        .unwrap();
    catalog
        .register(relation(
            "s",
            &["b", "c"],
            (0..5).map(|v| vec![v, 100 + v]).collect(),
        ))
        .unwrap();
    Engine::new(catalog)
}

fn union_query() -> UnionQuery {
    UnionQuery::set_union()
        .chain("j1", ["ra", "s"])
        .unwrap()
        .chain("j2", ["rb", "s"])
        .unwrap()
}

fn chaos_options(plan: FaultPlan) -> ServerOptions {
    ServerOptions::default()
        .with_io_grace(Duration::from_millis(300))
        .with_drain_grace(Duration::from_millis(200))
        .with_fault_plan(plan)
}

fn chaos_client(addr: std::net::SocketAddr, plan_seed: u64, seq: u64) -> Option<Client> {
    let client = Client::connect(addr)
        .ok()?
        .with_busy_retries(64)
        .with_retry_seed(plan_seed ^ seq)
        .with_reconnect(4)
        .with_io_timeout(Duration::from_secs(2))
        .ok()?;
    // The plan seed varies with `seq`: a fresh connection must draw a
    // fresh fault schedule, otherwise one unlucky schedule (drop on
    // the first write) would kill every reconnect attempt identically.
    Some(client.with_fault_plan(FaultPlan::new(
        plan_seed ^ 0x5eed ^ seq.wrapping_mul(0x9E37_79B9),
        FaultConfig::standard(),
    )))
}

/// The flagship chaos run: a seeded fault storm on both sides of the
/// wire. Every request resolves to a typed outcome, successes are
/// bit-identical to the fault-free reference, and after the storm a
/// clean client finds the server fully serveable — no panicked
/// workers, no poisoned registry, no stuck connections.
#[test]
fn fault_storm_yields_typed_outcomes_and_bit_identical_successes() {
    let engine = default_engine();
    let query = union_query();
    let prepared = engine.prepare(&query).unwrap();
    let n = 24usize;
    let requests = 48u64;

    // Fault-free reference, same seeds the wire requests will use.
    let reference: Vec<Vec<Tuple>> = (0..requests)
        .map(|seed| prepared.sample(n, seed).unwrap().0)
        .collect();

    let root_seed = 0xC0FFEE;
    let server = Server::bind_with(
        engine.clone(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(2),
        chaos_options(FaultPlan::new(root_seed, FaultConfig::standard())),
    )
    .unwrap();
    let addr = server.addr();

    let mut conn_seq = 0u64;
    let mut client = chaos_client(addr, root_seed, conn_seq);
    let mut remote = None;
    let mut successes = 0usize;
    let mut failures = 0usize;
    for seed in 0..requests {
        if client.is_none() {
            conn_seq += 1;
            client = chaos_client(addr, root_seed, conn_seq);
            remote = None;
        }
        let Some(c) = client.as_mut() else {
            failures += 1;
            continue;
        };
        if remote.is_none() {
            match c.prepare(&query) {
                Ok(r) => remote = Some(r),
                Err(_) => {
                    // Typed outcome for the prepare; rebuild next turn.
                    client = None;
                    failures += 1;
                    continue;
                }
            }
        }
        let r = remote.as_ref().unwrap().clone();
        match c.sample(&r, n, seed) {
            Ok(batch) => {
                assert_eq!(
                    batch.tuples, reference[seed as usize],
                    "seed {seed}: a successful faulted response diverged from the \
                     fault-free reference — faults may kill requests, never corrupt them"
                );
                successes += 1;
            }
            Err(e) => {
                // Every failure is a typed NetError; formatting it
                // proves it is structured, not a panic payload.
                let _ = e.to_string();
                failures += 1;
                client = None;
            }
        }
    }
    println!("storm: {successes} ok, {failures} typed failures");
    assert!(
        successes > 0,
        "the standard plan must let some requests through"
    );

    // After the storm the server must still be serveable. The server
    // keeps injecting faults into every connection (the plan is
    // server-wide), so the checking client carries no fault plan of
    // its own but leans on the retry policy; with bounded retries it
    // must still get correct answers out.
    let mut verified = 0;
    for round in 0..8u64 {
        let Ok(connected) = Client::connect(addr) else {
            continue;
        };
        let Ok(mut clean) = connected
            .with_busy_retries(64)
            .with_retry_seed(round)
            .with_reconnect(16)
            .with_io_timeout(Duration::from_secs(2))
        else {
            continue;
        };
        let Ok(remote) = clean.prepare(&query) else {
            continue;
        };
        for seed in [0u64, 7, 31] {
            if let Ok(batch) = clean.sample(&remote, n, seed) {
                assert_eq!(batch.tuples, reference[seed as usize]);
                verified += 1;
            }
        }
        if verified >= 3 {
            let _ = clean.shutdown();
            break;
        }
    }
    assert!(
        verified >= 3,
        "server must remain serveable after the storm (verified {verified}/3)"
    );
    server.stop();
    server.join().unwrap();
}

/// Two identical storms under the same root seeds produce the same
/// sequence of per-request outcomes — the fault schedule is a pure
/// function of the seeds, so chaos failures are replayable.
#[test]
fn fault_storms_are_reproducible() {
    let run = |root_seed: u64| -> Vec<bool> {
        let engine = default_engine();
        let query = union_query();
        let server = Server::bind_with(
            engine,
            "127.0.0.1:0",
            ServiceConfig::with_workers(1),
            chaos_options(FaultPlan::new(root_seed, FaultConfig::standard())),
        )
        .unwrap();
        let addr = server.addr();
        let mut outcomes = Vec::new();
        // One connection per request keeps the fault schedule aligned
        // with the connection index regardless of earlier outcomes.
        for seed in 0..24u64 {
            // No client-side retries: retries would consume server
            // connections unevenly across runs.
            let outcome = (|| -> Result<(), NetError> {
                let mut c = Client::connect(addr)?
                    .with_busy_retries(64)
                    .with_io_timeout(Duration::from_secs(2))?;
                let remote = c.prepare(&query)?;
                c.sample(&remote, 8, seed)?;
                Ok(())
            })();
            outcomes.push(outcome.is_ok());
        }
        server.stop();
        server.join().unwrap();
        outcomes
    };
    let a = run(41);
    let b = run(41);
    assert_eq!(a, b, "same seeds must replay the same outcome sequence");
}

/// The wire panic pill (`n == u64::MAX`) panics inside the worker; the
/// panic is contained into a typed error frame and the pool, the
/// registry, and the connection all keep working.
#[test]
fn wire_panic_pill_is_contained_and_typed() {
    let engine = default_engine();
    let query = union_query();
    let server = Server::bind(engine, "127.0.0.1:0", ServiceConfig::with_workers(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client.prepare(&query).unwrap();

    match client.sample(&remote, usize::MAX, 3) {
        Err(NetError::Remote { message, .. }) => {
            assert!(
                message.contains("panic"),
                "pill must surface as a typed panic report, got: {message}"
            );
        }
        other => panic!("expected typed remote error for the panic pill, got {other:?}"),
    }

    // Same connection, same worker pool: still serving, still typed.
    let batch = client.sample(&remote, 8, 3).unwrap();
    assert_eq!(batch.tuples.len(), 8);
    let stats = client.stats().unwrap();
    assert!(stats.failed >= 1, "the pill must count as a failure");
    client.shutdown().unwrap();
    server.join().unwrap();
}

/// Ignored stress variant for the release-mode CI chaos step: more
/// requests, more clients, bigger batches — same three invariants.
#[test]
#[ignore = "stress profile: run via CI's release-mode chaos step"]
fn stress_fault_storm_across_concurrent_clients() {
    let engine = default_engine();
    let query = union_query();
    let prepared = engine.prepare(&query).unwrap();
    let n = 32usize;
    let per_client = 64u64;
    let clients = 4u64;

    let root_seed = 0xDEAD_BEEF;
    let server = Server::bind_with(
        engine.clone(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(4).queue_capacity(16),
        chaos_options(FaultPlan::new(root_seed, FaultConfig::standard())),
    )
    .unwrap();
    let addr = server.addr();

    let totals: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|cid| {
                let query = query.clone();
                let prepared = &prepared;
                scope.spawn(move || {
                    let mut conn_seq = cid * 1000;
                    let mut client = chaos_client(addr, root_seed, conn_seq);
                    let mut remote = None;
                    let mut ok = 0usize;
                    let mut failed = 0usize;
                    for r in 0..per_client {
                        let seed = cid * 10_000 + r;
                        if client.is_none() {
                            conn_seq += 1;
                            client = chaos_client(addr, root_seed, conn_seq);
                            remote = None;
                        }
                        let Some(c) = client.as_mut() else {
                            failed += 1;
                            continue;
                        };
                        if remote.is_none() {
                            match c.prepare(&query) {
                                Ok(h) => remote = Some(h),
                                Err(_) => {
                                    client = None;
                                    failed += 1;
                                    continue;
                                }
                            }
                        }
                        let handle = remote.as_ref().unwrap().clone();
                        match c.sample(&handle, n, seed) {
                            Ok(batch) => {
                                let reference = prepared.sample(n, seed).unwrap().0;
                                assert_eq!(
                                    batch.tuples, reference,
                                    "client {cid} seed {seed} diverged under faults"
                                );
                                ok += 1;
                            }
                            Err(_) => {
                                failed += 1;
                                client = None;
                            }
                        }
                    }
                    (ok, failed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok: usize = totals.iter().map(|t| t.0).sum();
    let failed: usize = totals.iter().map(|t| t.1).sum();
    println!("stress storm: {ok} ok, {failed} typed failures");
    assert!(ok > 0);

    // Server remains serveable after the storm. The server-side plan
    // still injects on every connection, so the check retries across
    // a few fresh connections.
    let mut served = false;
    for round in 0..8u64 {
        let Ok(connected) = Client::connect(addr) else {
            continue;
        };
        let Ok(mut clean) = connected
            .with_busy_retries(64)
            .with_retry_seed(round)
            .with_reconnect(16)
            .with_io_timeout(Duration::from_secs(2))
        else {
            continue;
        };
        let Ok(remote) = clean.prepare(&query) else {
            continue;
        };
        if let Ok(batch) = clean.sample(&remote, n, 1) {
            assert_eq!(batch.tuples, prepared.sample(n, 1).unwrap().0);
            served = true;
            let _ = clean.shutdown();
            break;
        }
    }
    assert!(served, "server must remain serveable after the storm");
    server.stop();
    server.join().unwrap();
}
