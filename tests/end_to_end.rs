//! Cross-crate integration tests: the full pipeline (estimate → cover →
//! sample → verify) in both the decentralized (histogram) and
//! centralized (random-walk / online) configurations, assembled through
//! the fluent `SamplerBuilder`.

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::walk_estimator::WalkEstimatorConfig;
use suj_join::WeightKind;

/// Decentralized pipeline: histogram parameters only (no data access
/// beyond statistics), EO subroutine — the data-market configuration.
#[test]
fn decentralized_pipeline_histogram_eo() {
    let w = Arc::new(uq1(&UqOptions::new(1, 41, 0.2)).unwrap());
    let mut sampler = SamplerBuilder::for_workload(w.clone())
        .estimator(Estimator::Histogram(HistogramOptions::default()))
        .weights(WeightKind::ExtendedOlken)
        .cover_policy(CoverPolicy::Record)
        .build()
        .unwrap();
    let mut rng = SujRng::seed_from_u64(1);
    let (samples, report) = sampler.sample(400, &mut rng).unwrap();
    assert_eq!(samples.len(), 400);

    // Every sample is a true member of the union.
    let exact = full_join_union(&w).unwrap();
    for t in &samples {
        assert!(exact.union_set.contains(t));
    }
    assert!(report.accepted >= 400);
}

/// Prepared-footprint accounting: every built sampler's report carries
/// the workload's columnar resident bytes *plus* the per-join
/// samplers' own structures (indexes, count tables, alias arenas), the
/// summary prints them, and they survive batch deltas.
#[test]
fn reports_carry_prepared_footprint_bytes() {
    let w = Arc::new(uq1(&UqOptions::new(1, 44, 0.2)).unwrap());
    let workload_bytes = w.memory_bytes() as u64;
    assert!(
        workload_bytes > 0,
        "workload must have a measurable footprint"
    );
    let mut sampler = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Histogram(HistogramOptions::default()))
        .weights(WeightKind::ExtendedOlken)
        .cover_policy(CoverPolicy::Record)
        .build()
        .unwrap();
    let total = sampler.report().prepared_bytes;
    assert!(
        total > workload_bytes,
        "footprint ({total}) must include the per-join samplers on top \
         of the workload ({workload_bytes})"
    );
    let mut rng = SujRng::seed_from_u64(4);
    let (_, report) = sampler.sample(50, &mut rng).unwrap();
    assert_eq!(report.prepared_bytes, total);
    assert!(
        report
            .summary()
            .contains(&format!("prepared_bytes={total}")),
        "summary must surface the footprint: {}",
        report.summary()
    );
}

/// Centralized pipeline: random-walk warm-up, EW subroutine.
#[test]
fn centralized_pipeline_random_walk_ew() {
    let w = Arc::new(uq3(&UqOptions::new(1, 42, 0.3)).unwrap());
    let mut sampler = SamplerBuilder::for_workload(w.clone())
        .estimator(Estimator::Walk(WalkEstimatorConfig::default()))
        .estimation_seed(2)
        .weights(WeightKind::Exact)
        .build()
        .unwrap();
    let mut rng = SujRng::seed_from_u64(2);
    let (samples, _) = sampler.sample(400, &mut rng).unwrap();
    let exact = full_join_union(&w).unwrap();
    for t in &samples {
        assert!(exact.union_set.contains(t));
    }
}

/// Online pipeline (Algorithm 2) across all three workloads, both
/// reuse settings.
#[test]
fn online_pipeline_all_workloads() {
    for (name, w) in [
        ("uq1", uq1(&UqOptions::new(1, 43, 0.2)).unwrap()),
        ("uq2", uq2(&UqOptions::new(1, 43, 0.2)).unwrap()),
        ("uq3", uq3(&UqOptions::new(1, 43, 0.3)).unwrap()),
    ] {
        let w = Arc::new(w);
        let exact = full_join_union(&w).unwrap();
        for reuse in [true, false] {
            let cfg = OnlineConfig {
                reuse,
                warmup: WalkEstimatorConfig {
                    max_walks_per_join: 300,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut sampler = SamplerBuilder::for_workload(w.clone())
                .strategy(Strategy::Online(cfg))
                .build()
                .unwrap();
            let mut rng = SujRng::seed_from_u64(3);
            let (samples, report) = sampler.sample(200, &mut rng).unwrap();
            assert_eq!(samples.len(), 200, "{name} reuse={reuse}");
            for t in &samples {
                assert!(exact.union_set.contains(t), "{name}: non-member sampled");
            }
            if reuse {
                assert!(report.reuse_accepted > 0, "{name}: no reuse happened");
            } else {
                assert_eq!(report.reuse_accepted, 0);
            }
        }
    }
}

/// Theorem 2's cost shape: total join-subroutine draws stay within
/// N + N·ln N on real workloads with exact parameters.
#[test]
fn sampling_cost_within_theorem2_bound() {
    let w = Arc::new(uq2(&UqOptions::new(1, 44, 0.2)).unwrap());
    let mut sampler = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::MembershipOracle)
        .build()
        .unwrap();
    let mut rng = SujRng::seed_from_u64(4);
    let n = 5_000usize;
    let (_, report) = sampler.sample(n, &mut rng).unwrap();
    let draws: u64 = report.join_draws.iter().sum();
    let bound = n as f64 + n as f64 * (n as f64).ln();
    assert!(
        (draws as f64) < bound,
        "draws {draws} exceed Theorem 2 bound {bound:.0}"
    );
}

/// Sampling with replacement: repeated draws of the same tuple occur at
/// the expected rate (birthday-style sanity check, not a full test).
#[test]
fn sampling_is_with_replacement() {
    let w = Arc::new(uq3(&UqOptions::new(1, 45, 0.5)).unwrap());
    let exact = full_join_union(&w).unwrap();
    let u = exact.union_size();
    let mut sampler = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .build()
        .unwrap();
    let mut rng = SujRng::seed_from_u64(5);
    let n = 4 * u;
    let (samples, _) = sampler.sample(n, &mut rng).unwrap();
    let distinct: suj_storage::FxHashSet<Tuple> = samples.iter().cloned().collect();
    assert!(
        distinct.len() < samples.len(),
        "drawing 4|U| samples must repeat tuples"
    );
}

/// Reproducibility: identical seeds give identical samples end to end.
#[test]
fn runs_are_reproducible() {
    let w = Arc::new(uq1(&UqOptions::new(1, 46, 0.2)).unwrap());
    let run = |seed: u64| {
        let mut sampler = SamplerBuilder::for_workload(w.clone())
            .estimator(Estimator::Exact)
            .build()
            .unwrap();
        let mut rng = SujRng::seed_from_u64(seed);
        sampler.sample(100, &mut rng).unwrap().0
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

/// Incremental consumption with early stop: the stream produces valid
/// members lazily and stops exactly where the caller stops.
#[test]
fn streaming_supports_early_stop() {
    let w = Arc::new(uq1(&UqOptions::new(1, 48, 0.2)).unwrap());
    let exact = full_join_union(&w).unwrap();
    let mut sampler = SamplerBuilder::for_workload(w)
        .estimator(Estimator::Exact)
        .cover_policy(CoverPolicy::MembershipOracle)
        .build()
        .unwrap();
    let mut rng = SujRng::seed_from_u64(6);
    let mut stream = SampleStream::over(&mut sampler, &mut rng);
    let mut taken = 0;
    for item in stream.by_ref() {
        let t = item.unwrap();
        assert!(exact.union_set.contains(&t));
        taken += 1;
        if taken == 17 {
            break; // stop mid-stream, no batch size declared anywhere
        }
    }
    assert_eq!(stream.yielded(), 17);
    assert_eq!(sampler.emitted(), 17);
}

/// The facade crate re-exports a working prelude.
#[test]
fn facade_prelude_is_usable() {
    let opts = UqOptions::new(1, 47, 0.2);
    let w = uq3(&opts).unwrap();
    assert_eq!(w.n_joins(), 3);
    let exact = full_join_union(&w).unwrap();
    assert!(exact.union_size() > 0);
}
