//! Cross-crate integration tests: estimator quality on the paper's
//! workloads — Theorem 3/Eq. 1 identities, histogram bounds (Theorem 4),
//! and random-walk convergence (§6).

use sample_union_joins::prelude::*;
use suj_core::walk_estimator::{walk_warmup, WalkEstimatorConfig};

/// With exact overlaps, the three union-size views (Eq. 1 over
/// k-overlaps, inclusion–exclusion, and cover sums) agree exactly on
/// every workload and every cover order.
#[test]
fn union_size_identities_on_all_workloads() {
    for (name, w) in [
        ("uq1", uq1(&UqOptions::new(1, 31, 0.25)).unwrap()),
        ("uq2", uq2(&UqOptions::new(1, 31, 0.25)).unwrap()),
        ("uq3", uq3(&UqOptions::new(1, 31, 0.25)).unwrap()),
    ] {
        let exact = full_join_union(&w).unwrap();
        let truth = exact.union_size() as f64;
        let eq1 = exact.overlap.union_size();
        let ie = exact.overlap.union_size_inclusion_exclusion();
        assert!((eq1 - truth).abs() < 1e-6, "{name}: Eq.1 {eq1} vs {truth}");
        assert!((ie - truth).abs() < 1e-6, "{name}: IE {ie} vs {truth}");

        let n = w.n_joins();
        let forward: Vec<usize> = (0..n).collect();
        let backward: Vec<usize> = (0..n).rev().collect();
        for order in [forward, backward] {
            let total: f64 = exact.overlap.cover_sizes(&order).iter().sum();
            assert!(
                (total - truth).abs() < 1e-6,
                "{name}: cover order {order:?} sums to {total}, want {truth}"
            );
        }
    }
}

/// k-overlaps partition each join: Σ_k |A_j^k| = |J_j| exactly.
#[test]
fn k_overlaps_partition_each_join() {
    for w in [
        uq1(&UqOptions::new(1, 32, 0.3)).unwrap(),
        uq3(&UqOptions::new(1, 32, 0.3)).unwrap(),
    ] {
        let exact = full_join_union(&w).unwrap();
        for j in 0..w.n_joins() {
            let total: f64 = exact.overlap.k_overlaps(j).iter().sum();
            let size = exact.join_size(j) as f64;
            assert!(
                (total - size).abs() < 1e-6,
                "join {j}: k-overlaps sum {total} vs |J| {size}"
            );
        }
    }
}

/// The histogram estimator in Max mode yields true upper bounds on
/// every pairwise and full overlap of every workload.
#[test]
fn histogram_bounds_dominate_truth() {
    for (name, w) in [
        ("uq1", uq1(&UqOptions::new(1, 33, 0.3)).unwrap()),
        ("uq2", uq2(&UqOptions::new(1, 33, 0.3)).unwrap()),
        ("uq3", uq3(&UqOptions::new(1, 33, 0.3)).unwrap()),
    ] {
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).unwrap();
        let n = w.n_joins();
        for a in 0..n {
            for b in (a + 1)..n {
                let bound = est.estimate_overlap(&[a, b]);
                let truth = exact.overlap.overlap(&[a, b]);
                assert!(
                    bound >= truth - 1e-6,
                    "{name}: O[{a},{b}] bound {bound} < truth {truth}"
                );
            }
        }
        let all: Vec<usize> = (0..n).collect();
        assert!(est.estimate_overlap(&all) >= exact.overlap.overlap(&all) - 1e-6);
    }
}

/// Random-walk estimation converges to the true sizes and overlaps on
/// UQ1 (the paper's "extremely accurate and stable" claim, §9.1.2).
#[test]
fn random_walk_estimates_converge_on_uq1() {
    let w = uq1(&UqOptions::new(1, 34, 0.3)).unwrap();
    let exact = full_join_union(&w).unwrap();
    let cfg = WalkEstimatorConfig {
        max_walks_per_join: 60_000,
        min_walks_per_join: 20_000,
        rel_threshold: 0.005,
        ..Default::default()
    };
    let mut rng = SujRng::seed_from_u64(77);
    let est = walk_warmup(&w, &cfg, &mut rng).unwrap();

    for j in 0..w.n_joins() {
        let truth = exact.join_size(j) as f64;
        let got = est.join_sizes[j];
        assert!(
            (got - truth).abs() / truth < 0.1,
            "join {j}: HT {got} vs {truth}"
        );
    }
    let est_u = est.overlap_map().unwrap().union_size();
    let truth_u = exact.union_size() as f64;
    assert!(
        (est_u - truth_u).abs() / truth_u < 0.15,
        "union: {est_u} vs {truth_u}"
    );
}

/// The paper's §9.1 observation: histogram ratio error shrinks as the
/// overlap scale grows ("the higher the overlap, the more accurate
/// histogram-based becomes").
#[test]
fn histogram_ratio_error_improves_with_overlap() {
    let err_at = |p: f64| -> f64 {
        let w = uq1(&UqOptions::new(1, 35, p)).unwrap();
        let exact = full_join_union(&w).unwrap();
        let est = HistogramEstimator::with_olken(&w, DegreeMode::Max).unwrap();
        let map = est.overlap_map().unwrap();
        let est_u = map.union_size();
        let truth_u = exact.union_size() as f64;
        (0..w.n_joins())
            .map(|j| {
                let e = map.join_size(j) / est_u;
                let t = exact.join_size(j) as f64 / truth_u;
                (e - t).abs() / t
            })
            .sum::<f64>()
            / w.n_joins() as f64
    };
    let low = err_at(0.1);
    let high = err_at(0.9);
    assert!(
        high <= low * 1.5,
        "error at P=0.9 ({high:.3}) should not exceed error at P=0.1 ({low:.3}) by much"
    );
}

/// Eq. 3 confidence intervals are finite and positive once walks exist.
#[test]
fn walk_overlap_ci_is_well_formed() {
    let w = uq2(&UqOptions::new(1, 36, 0.2)).unwrap();
    let mut rng = SujRng::seed_from_u64(5);
    let est = walk_warmup(&w, &WalkEstimatorConfig::default(), &mut rng).unwrap();
    let ci = est.overlap_ci(&[0, 1], 0.9);
    assert!(ci.estimate >= 0.0);
    assert!(ci.half_width.is_finite());
    assert!(ci.half_width >= 0.0);
    let wider = est.overlap_ci(&[0, 1], 0.99);
    assert!(wider.half_width >= ci.half_width);
}

/// Selection predicates: push-down (UQ2's construction) equals
/// filter-after-join semantics end to end.
#[test]
fn uq2_pushdown_semantics() {
    use suj_core::predicate_mode::push_down;
    use suj_storage::{CompareOp, Predicate, Value};

    let opts = UqOptions::new(1, 37, 0.2);
    // Rebuild the unfiltered base chain exactly as workload::uq2 does.
    let cfg = opts.config;
    let region = std::sync::Arc::new(suj_tpch::gen::region());
    let nation = std::sync::Arc::new(suj_tpch::gen::nation());
    let supplier = std::sync::Arc::new(suj_tpch::gen::supplier(&cfg, "supplier", 0, 1.0));
    let partsupp = std::sync::Arc::new(suj_tpch::gen::partsupp(&cfg, "partsupp", 0, 1.0));
    let part = std::sync::Arc::new(suj_tpch::gen::part(&cfg, "part", 0, 1.0));
    let base = JoinSpec::chain("base", vec![region, nation, supplier, partsupp, part]).unwrap();

    let pred = Predicate::cmp("psize", CompareOp::Le, Value::int(30));
    let pushed = push_down(&base, &pred, "filtered").unwrap();

    let full = suj_join::exec::execute(&base);
    let compiled = pred.compile(base.output_schema()).unwrap();
    let expected: suj_storage::FxHashSet<Tuple> = full
        .tuples()
        .iter()
        .filter(|t| compiled.eval(t))
        .cloned()
        .collect();
    assert_eq!(suj_join::exec::execute(&pushed).distinct_set(), expected);
    assert!(!expected.is_empty());
}

/// Cyclic joins: the histogram estimator decomposes into skeleton +
/// residual (§8.2) and its Max-mode bounds still dominate truth.
#[test]
fn histogram_bounds_hold_on_cyclic_workload() {
    let w = uq4_cyclic(&UqOptions::new(1, 38, 0.3)).unwrap();
    let exact = full_join_union(&w).unwrap();
    let sizes = w.exact_join_sizes().unwrap();
    let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).unwrap();
    for a in 0..3 {
        for b in (a + 1)..3 {
            let bound = est.estimate_overlap(&[a, b]);
            let truth = exact.overlap.overlap(&[a, b]);
            assert!(bound >= truth - 1e-6, "O[{a},{b}]: {bound} < {truth}");
        }
    }
}

/// Cyclic joins: wander-join estimation (spanning walks + consistency
/// failures) converges to the true cyclic sizes.
#[test]
fn random_walk_estimates_cyclic_sizes() {
    let w = uq4_cyclic(&UqOptions::new(1, 39, 0.3)).unwrap();
    let exact = full_join_union(&w).unwrap();
    let cfg = WalkEstimatorConfig {
        max_walks_per_join: 150_000,
        min_walks_per_join: 50_000,
        rel_threshold: 0.01,
        ..Default::default()
    };
    let mut rng = SujRng::seed_from_u64(40);
    let est = suj_core::walk_estimator::walk_warmup(&w, &cfg, &mut rng).unwrap();
    for j in 0..3 {
        let truth = exact.join_size(j) as f64;
        let got = est.join_sizes[j];
        assert!(
            (got - truth).abs() / truth < 0.2,
            "cyclic join {j}: HT {got} vs truth {truth}"
        );
    }
}
