//! Cyclic-join integration tests: `Strategy::Auto` routes cyclic
//! topologies to the AGM box-splitting sampler (planner rule
//! `cyclic-join`, weights `agm-box`), the accepted stream is exactly
//! uniform over the union by chi-square against materialized ground
//! truth, and the full determinism contract holds — same root seed and
//! request ids give bit-identical samples in-process, over TCP, from a
//! snapshot-restored replica, and at any worker count.

use proptest::prelude::*;
use sample_union_joins::prelude::*;
use sample_union_joins::{Client, Server};
use std::sync::Arc;
use suj_join::exec::execute;
use suj_join::{CyclicJoinSampler, JoinSampler, JoinSpec, SampleOutcome};
use suj_storage::{FxHashMap, FxHashSet};

fn relation(name: &str, attrs: &[&str], rows: &[[i64; 2]]) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .iter()
        .map(|r| r.iter().map(|&v| Value::int(v)).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

/// A catalog holding a triangle `x(a,b) ⋈ y(b,c) ⋈ z(c,a)` (six
/// triangles), a shrunken copy `z2` of `z` (so a second join member
/// overlaps the first), and a 4-cycle `p ⋈ q ⋈ r ⋈ s` (twelve cycles).
fn cyclic_engine() -> Engine {
    let mut catalog = Catalog::new();
    let regs = [
        relation("x", &["a", "b"], &[[1, 2], [1, 9], [5, 2], [5, 6]]),
        relation("y", &["b", "c"], &[[2, 3], [2, 4], [9, 4], [6, 3]]),
        relation("z", &["c", "a"], &[[3, 1], [4, 5], [4, 1], [3, 5]]),
        relation("z2", &["c", "a"], &[[3, 1], [4, 5]]),
        relation("p", &["a", "b"], &[[1, 2], [1, 3], [4, 2], [4, 3]]),
        relation("q", &["b", "c"], &[[2, 5], [3, 5], [2, 6], [3, 7]]),
        relation("r", &["c", "d"], &[[5, 8], [6, 8], [7, 9], [5, 9]]),
        relation("s", &["d", "a"], &[[8, 1], [9, 4], [8, 4], [9, 1]]),
    ];
    for rel in regs {
        catalog.register(rel).unwrap();
    }
    Engine::new(catalog)
}

/// Union of two triangle joins sharing `x` and `y`; the second is a
/// strict subset of the first, so the union exercises the rejection
/// machinery on top of the cyclic per-join samplers.
fn triangle_union() -> UnionQuery {
    UnionQuery::set_union()
        .join(JoinDef::natural("t1", ["x", "y", "z"]))
        .unwrap()
        .join(JoinDef::natural("t2", ["x", "y", "z2"]))
        .unwrap()
}

/// A single 4-cycle join (union of one).
fn four_cycle_union() -> UnionQuery {
    UnionQuery::set_union()
        .join(JoinDef::natural("c4", ["p", "q", "r", "s"]))
        .unwrap()
}

/// Draws `draws_per_tuple·|U|` samples through the fully-planned
/// `PreparedQuery` path and chi-square-tests them against the uniform
/// distribution over the materialized union.
fn assert_prepared_uniform(prepared: &PreparedQuery, seed: u64, draws_per_tuple: usize) {
    let exact = full_join_union(prepared.workload()).expect("ground truth");
    let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
    assert!(universe.len() >= 4, "universe too small to test");

    let n = draws_per_tuple * universe.len();
    let (samples, _) = prepared.sample(n, seed).expect("sampling");
    assert_eq!(samples.len(), n);

    let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
    for t in &samples {
        assert!(exact.union_set.contains(t), "sampled non-member {t}");
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    let observed: Vec<u64> = universe
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .collect();
    let outcome = suj_stats::chi_square_test(&observed).expect("chi2");
    assert!(
        outcome.p_value > 1e-3,
        "not uniform (chi2 = {:.1}, dof = {}, p = {:e})",
        outcome.statistic,
        outcome.dof,
        outcome.p_value
    );
}

/// The ISSUE's hard constraint: `Strategy::Auto` detects the cycle,
/// explains the choice, and the sampled stream is uniform.
#[test]
fn auto_routes_triangle_union_to_cyclic_join_and_stays_uniform() {
    let engine = cyclic_engine();
    let prepared = engine.prepare(&triangle_union()).unwrap();

    assert_eq!(prepared.plan().rule, PlanRule::CyclicJoin);
    let summary = prepared.plan().summary().to_string();
    assert!(summary.contains("rule=cyclic-join"), "summary: {summary}");
    assert!(summary.contains("weights=agm-box"), "summary: {summary}");
    let explain = prepared.explain();
    assert!(
        explain.contains("AGM") && explain.contains("Atserias"),
        "explain must cite the AGM bound: {explain}"
    );

    assert_prepared_uniform(&prepared, 11, 600);
}

#[test]
fn auto_routes_four_cycle_to_cyclic_join_and_stays_uniform() {
    let engine = cyclic_engine();
    let prepared = engine.prepare(&four_cycle_union()).unwrap();

    assert_eq!(prepared.plan().rule, PlanRule::CyclicJoin);
    let summary = prepared.plan().summary().to_string();
    assert!(summary.contains("weights=agm-box"), "summary: {summary}");

    assert_prepared_uniform(&prepared, 23, 600);
}

/// Determinism across transports: for each cyclic query, samples drawn
/// (a) in-process, (b) over TCP from the original engine, and (c) over
/// TCP from a snapshot-restored replica are identical tuple-for-tuple,
/// and the replica prepares without a single estimation pass (the
/// `SortedIndex` sections restore everything the box sampler needs).
#[test]
fn cyclic_wire_and_replica_match_in_process() {
    let engine = cyclic_engine();
    let queries = [triangle_union(), four_cycle_union()];
    let n = 24usize;
    let seeds = [0u64, 7, 41, 1000];

    // Warm the prepared-plan cache first: the snapshot ships the frozen
    // plans, which is what lets the replica skip estimation entirely.
    for query in &queries {
        engine.prepare(query).unwrap();
    }
    let bytes = engine.snapshot_to_bytes().unwrap();
    let restored = Engine::load_snapshot_bytes(&bytes).unwrap();

    let server_a = Server::bind(engine.clone(), "127.0.0.1:0", ServiceConfig::default()).unwrap();
    let server_b = Server::bind(restored, "127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut client_a = Client::connect(server_a.addr()).unwrap();
    let mut client_b = Client::connect(server_b.addr()).unwrap();

    for query in &queries {
        let prepared = engine.prepare(query).unwrap();
        let local: Vec<Vec<Tuple>> = seeds
            .iter()
            .map(|&s| prepared.sample(n, s).unwrap().0)
            .collect();

        let remote_a = client_a.prepare(query).unwrap();
        let remote_b = client_b.prepare(query).unwrap();
        assert_eq!(
            remote_b.estimations, 0,
            "snapshot-restored replica must serve cyclic queries without re-estimating"
        );
        assert_eq!(remote_a.summary, remote_b.summary, "plans must coincide");
        assert!(
            remote_a.summary.contains("weights=agm-box"),
            "wire summary must carry the cyclic routing: {}",
            remote_a.summary
        );

        for (i, &seed) in seeds.iter().enumerate() {
            let a = client_a.sample(&remote_a, n, seed).unwrap();
            let b = client_b.sample(&remote_b, n, seed).unwrap();
            assert_eq!(a.tuples.len(), n);
            assert_eq!(
                a.tuples, local[i],
                "wire vs in-process diverged at seed {seed}"
            );
            assert_eq!(
                b.tuples, local[i],
                "replica vs in-process diverged at seed {seed}"
            );
            assert_eq!(a.attrs, b.attrs);
        }
    }

    client_a.shutdown().unwrap();
    client_b.shutdown().unwrap();
    server_a.join().unwrap();
    server_b.join().unwrap();
}

/// Serves ids `0..requests` of `query` and returns responses by id.
fn serve(
    engine: &Engine,
    query: &UnionQuery,
    workers: usize,
    requests: u64,
) -> Vec<SampleResponse> {
    let prepared = engine.prepare(query).unwrap();
    let service = SamplingService::start(
        engine.clone(),
        ServiceConfig::with_workers(workers).root_seed(2023),
    );
    let batch = (0..requests)
        .map(|id| SampleRequest::prepared(id, 16, &prepared))
        .collect();
    let mut responses = service.run_batch(batch).unwrap();
    responses.sort_by_key(|r| r.id);
    let stats = service.shutdown();
    assert_eq!(stats.completed, requests);
    assert_eq!(stats.failed, 0);
    responses
}

/// Same root seed + request ids ⇒ bit-identical samples at any worker
/// count, for both cyclic shapes.
#[test]
fn cyclic_serving_is_worker_count_invariant() {
    let engine = cyclic_engine();
    for query in [triangle_union(), four_cycle_union()] {
        let one = serve(&engine, &query, 1, 12);
        let four = serve(&engine, &query, 4, 12);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.tuples, b.tuples);
            assert_eq!(a.tuples.len(), 16);
        }
    }
}

fn arc_rel(name: &str, attrs: &[&str], rows: &[(i64, i64)]) -> Arc<suj_storage::Relation> {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .iter()
        .map(|&(u, v)| Tuple::new(vec![Value::int(u), Value::int(v)]))
        .collect();
    Arc::new(suj_storage::Relation::new(name, schema, tuples).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every accepted draw from the box sampler is a member of the
    /// materialized join, and the AGM hint upper-bounds `OUT` — on
    /// arbitrary (bag-semantics, collision-heavy) triangle data.
    #[test]
    fn cyclic_acceptance_implies_membership(
        xs in prop::collection::vec((0i64..4, 0i64..4), 1..8),
        ys in prop::collection::vec((0i64..4, 0i64..4), 1..8),
        zs in prop::collection::vec((0i64..4, 0i64..4), 1..8),
        seed in 0u64..1 << 20,
    ) {
        let spec = Arc::new(
            JoinSpec::natural(
                "tri",
                vec![
                    arc_rel("x", &["a", "b"], &xs),
                    arc_rel("y", &["b", "c"], &ys),
                    arc_rel("z", &["c", "a"], &zs),
                ],
            )
            .unwrap(),
        );
        let sampler = CyclicJoinSampler::new(spec.clone()).unwrap();
        let members: FxHashSet<Tuple> = execute(&spec).tuples().iter().cloned().collect();
        prop_assert!(
            sampler.join_size_hint() + 1e-9 >= members.len() as f64,
            "AGM hint {} below OUT {}",
            sampler.join_size_hint(),
            members.len()
        );
        let mut rng = SujRng::seed_from_u64(seed);
        let mut accepted = 0usize;
        for _ in 0..400 {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                prop_assert!(members.contains(&t), "accepted non-member {t}");
                accepted += 1;
            }
        }
        if members.is_empty() {
            prop_assert_eq!(accepted, 0, "accepted draws from an empty join");
        }
    }
}
