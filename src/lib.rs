//! Facade crate for the `sample-union-joins` workspace.
//!
//! Re-exports the public API of every sub-crate so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! ```
//! use sample_union_joins::prelude::*;
//! ```
//!
//! The declarative entry point is [`Catalog`] → [`UnionQuery`] →
//! [`Engine`]: register relations by name (in memory, CSV, or TPC-H via
//! [`CatalogTpchExt`]), describe the union of joins, and let the
//! engine's planner choose estimator, strategy, cover, and predicate
//! mode. `SamplerBuilder` remains the thin explicit-configuration path.
//!
//! For concurrent serving, `Engine::prepare` yields a shareable
//! `Arc<PreparedQuery>` (estimation paid once, handles minted per
//! thread) and [`SamplingService`] wraps the engine in a bounded-queue
//! worker pool with a deterministic per-request RNG contract.
//!
//! For network serving, [`Server`] exposes the engine over a
//! length-prefixed TCP protocol (see `suj-net`), and
//! `Engine::{save_snapshot, load_snapshot}` persist prepared artifacts
//! so cold replicas restore without re-running estimation.
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

pub use suj_core as core;
pub use suj_join as join;
pub use suj_net as net;
pub use suj_stats as stats;
pub use suj_storage as storage;
pub use suj_tpch as tpch;

pub use suj_core::catalog::{Catalog, Engine, PreparedQuery};
pub use suj_core::planner::{Plan, PlanRule, Planner, PlannerConfig};
pub use suj_core::query::{JoinDef, UnionQuery, UnionSemantics};
pub use suj_core::serve::{
    SampleRequest, SampleResponse, SamplingService, ServiceConfig, ServiceStats,
};
pub use suj_net::{Client, NetError, Server, ServerOptions, WireStats};

#[cfg(feature = "faults")]
pub use suj_net::{FaultConfig, FaultPlan};

use suj_core::error::CoreError;
use suj_tpch::TpchConfig;

/// TPC-H loader hook for the engine's [`Catalog`]: registers the
/// deterministic generator's base tables (`region`, `nation`,
/// `supplier`, `customer`, `orders`, `lineitem`, `part`, `partsupp`)
/// so declarative queries can name them directly.
pub trait CatalogTpchExt {
    /// Generates and registers the TPC-H style tables for `config`.
    /// Fails if any table name is already registered.
    fn register_tpch(&mut self, config: &TpchConfig) -> Result<usize, CoreError>;
}

impl CatalogTpchExt for Catalog {
    fn register_tpch(&mut self, config: &TpchConfig) -> Result<usize, CoreError> {
        self.import(&suj_tpch::generate_catalog(config))
    }
}

/// Commonly used items across the workspace.
pub mod prelude {
    pub use suj_core::prelude::*;
    pub use suj_join::prelude::*;
    pub use suj_stats::{RunningMoments, SujRng};
    pub use suj_storage::prelude::*;
    pub use suj_tpch::prelude::*;

    // Two crates export a `Catalog` (the storage-layer registry and
    // the core query-facing one); the explicit import makes the core
    // catalog — the one queries resolve against — win the glob.
    pub use crate::CatalogTpchExt;
    pub use suj_core::catalog::Catalog;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::CatalogTpchExt;

    #[test]
    fn tpch_loader_hook_registers_base_tables() {
        let mut catalog = Catalog::new();
        let config = TpchConfig::new(1, 3);
        let added = catalog.register_tpch(&config).unwrap();
        assert_eq!(added, 8);
        for table in [
            "region", "nation", "supplier", "customer", "orders", "lineitem", "part", "partsupp",
        ] {
            assert!(catalog.contains(table), "missing {table}");
        }
        // Re-registering collides.
        assert!(catalog.register_tpch(&config).is_err());
    }

    #[test]
    fn tpch_query_end_to_end_without_manual_configuration() {
        let mut catalog = Catalog::new();
        catalog.register_tpch(&TpchConfig::new(1, 3)).unwrap();
        let query = UnionQuery::set_union()
            .chain("q", ["nation", "supplier"])
            .unwrap();
        let engine = Engine::new(catalog);
        let prepared = engine.prepare(&query).unwrap();
        let mut rng = SujRng::seed_from_u64(9);
        let (samples, report) = prepared.run(20, &mut rng).unwrap();
        assert_eq!(samples.len(), 20);
        assert!(report.config.is_some());
    }
}
