//! Facade crate for the `sample-union-joins` workspace.
//!
//! Re-exports the public API of every sub-crate so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! ```
//! use sample_union_joins::prelude::*;
//! ```
//!
//! See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

pub use suj_core as core;
pub use suj_join as join;
pub use suj_stats as stats;
pub use suj_storage as storage;
pub use suj_tpch as tpch;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use suj_core::prelude::*;
    pub use suj_join::prelude::*;
    pub use suj_stats::{RunningMoments, SujRng};
    pub use suj_storage::prelude::*;
    pub use suj_tpch::prelude::*;
}
